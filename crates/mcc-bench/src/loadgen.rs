//! Open-loop saturation load generation over mixed workloads.
//!
//! Where [`crate::runner`] answers "what do the paper's tables look like",
//! this module answers "how much sustained traffic does the stack take
//! before latency or correctness gives out". [`run_load`] drives a
//! long-lived pool of mesh instances — each slot owns a routing mesh
//! served through [`PreparedMesh2`]/[`PreparedMesh3`], a labelling mesh,
//! and an [`IncrementalModels2`]/[`IncrementalModels3`] under fault churn
//! — with an open-loop request stream described by the scenario's
//! `[load]` section (see [`crate::scenario`]): the offered rate starts at
//! `initial_rps`, rises by `increment_rps` every `step_secs`-second step,
//! and the ramp stops when the step's p99 latency or failure rate crosses
//! the profile's saturation thresholds (or the rate ceiling is reached).
//!
//! **Open-loop** means arrivals are scheduled on a fixed clock, not gated
//! on completions: every request has a scheduled arrival time, workers
//! sleep until it when they are early, and latency is measured from the
//! *scheduled* arrival to completion. A saturated system therefore shows
//! queueing delay honestly instead of silently slowing the request stream
//! (the coordinated-omission trap of closed-loop harnesses).
//!
//! **Determinism contract.** The request sequence is a pure function of
//! the profile and the scenario's `seed_start`: how many ops each step
//! issues, their class interleave (error-diffusion over the `mix`
//! weights, see [`plan_step`]), their slot assignment, and every per-op
//! RNG seed. Two runs of the same scenario execute the identical op
//! sequence and — because the kernels themselves are deterministic — the
//! identical failure counts; only wall-clock fields (latency percentiles,
//! achieved throughput, elapsed time) vary between runs. Pinned by the
//! `loadgen` integration tests.
//!
//! Latency is recorded in a per-worker [`LatencyHist`] (merged per step),
//! so percentile reporting is O(1) memory no matter how many requests a
//! step issues.

use std::time::{Duration, Instant};

use fault_model::incremental::{IncrementalModels2, IncrementalModels3};
use mcc_protocols::labelling::{DistLabelling2, DistLabelling3};
use mcc_routing::prepared::{PreparedMesh2, PreparedMesh3};
use mcc_routing::trial::TrialOptions;
use mesh_topo::coord::{c2, c3};
use mesh_topo::par::bands;
use mesh_topo::{detected_cores, Frame2, Frame3, Mesh2D, Mesh3D, Parallelism};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::hist::LatencyHist;
use crate::runner::{mix_trial_seed, random_healthy_pair_2d, random_healthy_pair_3d, split_budget};
use crate::scenario::{LoadProfile, MeshDims, Scenario, ScenarioError, TableKind};

/// The workload classes a `[load]` mix interleaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpClass {
    /// One routing trial (pair sample + MCC/RFB/greedy per the scenario's
    /// router selection) on the slot's prepared routing mesh.
    Routing,
    /// One distributed-labelling convergence run on the slot's labelling
    /// mesh.
    Labelling,
    /// One paired heal+inject churn batch through the slot's incremental
    /// models.
    Churn,
}

/// One planned request: what to run, where, with which randomness, and
/// when it is scheduled to arrive (nanoseconds from step start).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpSpec {
    /// Workload class, drawn from the mix by error diffusion.
    pub class: OpClass,
    /// Pool slot (round-robin over the whole pool, all geometries).
    pub slot: usize,
    /// Per-op RNG seed, mixed from the scenario's `seed_start` and the
    /// op's global index — independent of thread interleaving.
    pub seed: u64,
    /// Scheduled arrival, nanoseconds after the step starts.
    pub sched_ns: u64,
}

/// The offered rate of ramp step `step` (0-based): `initial_rps`
/// plus `step` increments, clamped to `max_rps`.
pub fn offered_rps(load: &LoadProfile, step: usize) -> u32 {
    (load.initial_rps as u64 + step as u64 * load.increment_rps as u64).min(load.max_rps as u64)
        as u32
}

/// Plan one ramp step: `max(1, round(rps × step_secs))` ops, arrivals
/// spaced evenly at the offered rate, classes interleaved by error
/// diffusion over the mix weights (each op goes to the class with the
/// largest accumulated deficit, ties to the earlier class), slots
/// assigned round-robin by global op index. Deterministic in all
/// arguments — this *is* the request sequence the determinism contract
/// pins; `op_base` is the count of ops planned by earlier steps, so seeds
/// and slot rotation continue across steps instead of restarting.
pub fn plan_step(
    load: &LoadProfile,
    rps: u32,
    slots: usize,
    master_seed: u64,
    op_base: u64,
) -> Vec<OpSpec> {
    let n = ((rps as f64 * load.step_secs).round() as u64).max(1);
    let gap_ns = 1_000_000_000.0 / rps as f64;
    let weights = load.mix();
    let total: f64 = weights.iter().sum();
    let classes = [OpClass::Routing, OpClass::Labelling, OpClass::Churn];
    let mut deficit = [0.0f64; 3];
    (0..n)
        .map(|i| {
            let mut pick = 0;
            for k in 0..3 {
                deficit[k] += weights[k];
                if deficit[k] > deficit[pick] {
                    pick = k;
                }
            }
            deficit[pick] -= total;
            let global = op_base + i;
            OpSpec {
                class: classes[pick],
                slot: (global % slots as u64) as usize,
                seed: mix_trial_seed(master_seed, global as usize),
                sched_ns: (i as f64 * gap_ns).round() as u64,
            }
        })
        .collect()
}

/// Per-step measurements. Fields up to `failures`/`fail_rate` are
/// deterministic for a fixed scenario; the wall-clock fields
/// (`achieved_rps`, `elapsed_ms`, the percentiles) are not.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StepReport {
    /// 0-based ramp step index.
    pub step: usize,
    /// Offered rate this step ran at.
    pub offered_rps: u32,
    /// Ops issued (deterministic: `max(1, round(rps × step_secs))`).
    pub ops: u64,
    /// Ops of each class, from the plan (deterministic).
    pub ops_routing: u64,
    /// Labelling ops (deterministic).
    pub ops_labelling: u64,
    /// Churn ops (deterministic).
    pub ops_churn: u64,
    /// Failed ops: routing trials whose selected router did not deliver a
    /// pair the oracle says is connected, and labelling runs that did not
    /// quiesce. Deterministic — the kernels are.
    pub failures: u64,
    /// `failures / ops`.
    pub fail_rate: f64,
    /// Completed ops per wall-clock second (wall-clock).
    pub achieved_rps: f64,
    /// Step wall-clock duration in milliseconds (wall-clock).
    pub elapsed_ms: f64,
    /// Latency percentiles over the step, microseconds, measured from
    /// each op's *scheduled* arrival to its completion (wall-clock).
    pub p50_us: u64,
    /// 99th percentile (wall-clock).
    pub p99_us: u64,
    /// 99.9th percentile (wall-clock).
    pub p999_us: u64,
    /// Whether this step crossed a saturation threshold (p99 over
    /// `p99_limit_ms`, or failure rate over `fail_limit`).
    pub saturated: bool,
}

/// The outcome of one saturation ramp.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadReport {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// Resolved thread budget the pool ran under.
    pub threads: usize,
    /// Hardware threads the platform reports (for cross-machine reading).
    pub detected_cores: usize,
    /// Total pool slots across all geometries.
    pub pool_slots: usize,
    /// The pool's mesh geometries, e.g. `["16x16", "6x6x6"]`.
    pub geometries: Vec<String>,
    /// One report per executed ramp step, in ramp order.
    pub steps: Vec<StepReport>,
    /// The offered rate at which the ramp saturated, if it did before
    /// reaching `max_rps`.
    pub saturated_at_rps: Option<u32>,
}

/// One pool slot: an immutable routing mesh (prepared per step by its
/// worker), an immutable labelling mesh, and incremental models whose
/// mesh the churn ops mutate. Routing/labelling stay on their own fixed
/// fault populations so their failure counts cannot depend on how churn
/// interleaves — that separation is what keeps the per-step failure
/// column deterministic.
#[allow(clippy::large_enum_variant)] // a pool holds a handful of slots, ever
enum Slot {
    D2 {
        route: Mesh2D,
        lab: Mesh2D,
        inc: IncrementalModels2,
        min_dist: u32,
    },
    D3 {
        route: Mesh3D,
        lab: Mesh3D,
        inc: IncrementalModels3,
        min_dist: u32,
    },
}

/// A worker's per-step view of one of its slots: the prepared routing
/// mesh borrows the slot's immutable `route` field while churn keeps
/// exclusive access to `inc` (disjoint field borrows).
#[allow(clippy::large_enum_variant)] // one short-lived Ctx per slot per step
enum Ctx<'a> {
    D2 {
        prep: PreparedMesh2<'a>,
        lab: &'a Mesh2D,
        inc: &'a mut IncrementalModels2,
        min_dist: u32,
    },
    D3 {
        prep: PreparedMesh3<'a>,
        lab: &'a Mesh3D,
        inc: &'a mut IncrementalModels3,
        min_dist: u32,
    },
}

/// Decorrelated fault-population seeds for a slot's three meshes: the
/// same master seed must not hand the routing, labelling and churn
/// meshes identical fault sets (they would fail in lockstep).
pub(crate) fn slot_seed(master: u64, geometry: usize, slot: usize, purpose: u64) -> u64 {
    master
        .wrapping_mul(0x9e37_79b9)
        .wrapping_add(((geometry as u64) << 40) ^ ((slot as u64) << 8) ^ purpose)
}

fn build_slot(
    sc: &Scenario,
    dims: MeshDims,
    geometry: usize,
    index: usize,
    intra: Parallelism,
) -> Slot {
    let count = sc.fault_counts[0];
    let min_dist = (dims.max_extent() as f64 * sc.min_dist_frac).round() as u32;
    let seed = |purpose| slot_seed(sc.seed_start, geometry, index, purpose);
    match dims {
        MeshDims::D2 { width, height } => {
            let build = |purpose: u64| {
                let mut mesh = if sc.wrap {
                    Mesh2D::torus(width, height)
                } else {
                    Mesh2D::new(width, height)
                };
                sc.inject_2d(&mut mesh, count, seed(purpose), &[]);
                mesh
            };
            Slot::D2 {
                route: build(0),
                lab: build(1),
                inc: IncrementalModels2::with_parallelism(build(2), sc.border, intra),
                min_dist,
            }
        }
        MeshDims::D3 { x, y, z } => {
            let build = |purpose: u64| {
                let mut mesh = if sc.wrap {
                    Mesh3D::torus(x, y, z)
                } else {
                    Mesh3D::new(x, y, z)
                };
                sc.inject_3d(&mut mesh, count, seed(purpose), &[]);
                mesh
            };
            Slot::D3 {
                route: build(0),
                lab: build(1),
                inc: IncrementalModels3::with_parallelism(build(2), sc.border, intra),
                min_dist,
            }
        }
    }
}

/// Execute one op on its slot; `true` means the op succeeded.
fn exec_op(
    ctx: &mut Ctx<'_>,
    op: &OpSpec,
    router_ok: impl Fn(bool, bool, bool) -> bool,
    intra: Parallelism,
) -> bool {
    let mut rng = SmallRng::seed_from_u64(op.seed);
    match (op.class, ctx) {
        (OpClass::Routing, Ctx::D2 { prep, min_dist, .. }) => {
            let (s, d) = random_healthy_pair_2d(&mut rng, prep.mesh(), *min_dist);
            let r = prep.run_trial(s, d, rng.gen());
            !r.oracle_ok || router_ok(r.mcc_ok, r.rfb_ok, r.greedy_ok)
        }
        (OpClass::Routing, Ctx::D3 { prep, min_dist, .. }) => {
            let (s, d) = random_healthy_pair_3d(&mut rng, prep.mesh(), *min_dist);
            let r = prep.run_trial(s, d, rng.gen());
            !r.oracle_ok || router_ok(r.mcc_ok, r.rfb_ok, r.greedy_ok)
        }
        (OpClass::Labelling, Ctx::D2 { lab, .. }) => {
            DistLabelling2::run_par(lab, Frame2::identity(lab), intra)
                .stats
                .quiescent
        }
        (OpClass::Labelling, Ctx::D3 { lab, .. }) => {
            DistLabelling3::run_par(lab, Frame3::identity(lab), intra)
                .stats
                .quiescent
        }
        (OpClass::Churn, Ctx::D2 { inc, .. }) => {
            let faults = inc.mesh().faults().to_vec();
            let heal = faults[rng.gen_range(0..faults.len())];
            let (w, h) = (inc.mesh().width(), inc.mesh().height());
            let inject = loop {
                let c = c2(rng.gen_range(0..w), rng.gen_range(0..h));
                if inc.mesh().is_healthy(c) {
                    break c;
                }
            };
            inc.apply(&[inject], &[heal]);
            true
        }
        (OpClass::Churn, Ctx::D3 { inc, .. }) => {
            let faults = inc.mesh().faults().to_vec();
            let heal = faults[rng.gen_range(0..faults.len())];
            let (nx, ny, nz) = (inc.mesh().nx(), inc.mesh().ny(), inc.mesh().nz());
            let inject = loop {
                let c = c3(
                    rng.gen_range(0..nx),
                    rng.gen_range(0..ny),
                    rng.gen_range(0..nz),
                );
                if inc.mesh().is_healthy(c) {
                    break c;
                }
            };
            inc.apply(&[inject], &[heal]);
            true
        }
    }
}

/// Run one step's plan over the pool: slots are sharded contiguously
/// over `workers` scoped threads (exclusive `&mut` per shard, so churn
/// needs no locking), each worker walks its slots' ops in schedule
/// order, sleeps until each op's scheduled arrival when early, and
/// records completion − scheduled-arrival into a worker-local histogram.
/// Returns the merged histogram, failure count and step wall time.
fn execute_step(
    slots: &mut [Slot],
    plan: &[OpSpec],
    workers: usize,
    intra: Parallelism,
    opts: TrialOptions,
    sc: &Scenario,
) -> (LatencyHist, u64, Duration) {
    let router = sc.router;
    let router_ok = move |mcc: bool, rfb: bool, greedy: bool| {
        if router.wants_mcc() {
            mcc
        } else if router.wants_rfb() {
            rfb
        } else {
            greedy
        }
    };
    let ranges = bands(slots.len(), workers);
    let t0 = Instant::now();
    let parts: Vec<(LatencyHist, u64)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut rest = slots;
        let mut base = 0usize;
        for range in &ranges {
            let (chunk, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let lo = base;
            base += range.len();
            let router_ok = &router_ok;
            handles.push(scope.spawn(move || {
                let mut ctxs: Vec<Ctx<'_>> = chunk
                    .iter_mut()
                    .map(|slot| match slot {
                        Slot::D2 {
                            route,
                            lab,
                            inc,
                            min_dist,
                        } => Ctx::D2 {
                            prep: PreparedMesh2::with_parallelism(route, opts, intra),
                            lab,
                            inc,
                            min_dist: *min_dist,
                        },
                        Slot::D3 {
                            route,
                            lab,
                            inc,
                            min_dist,
                        } => Ctx::D3 {
                            prep: PreparedMesh3::with_parallelism(route, opts, intra),
                            lab,
                            inc,
                            min_dist: *min_dist,
                        },
                    })
                    .collect();
                let mut hist = LatencyHist::new();
                let mut failures = 0u64;
                let hi = lo + ctxs.len();
                for op in plan.iter().filter(|op| (lo..hi).contains(&op.slot)) {
                    let sched = Duration::from_nanos(op.sched_ns);
                    if let Some(wait) = sched.checked_sub(t0.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    let ok = exec_op(&mut ctxs[op.slot - lo], op, router_ok, intra);
                    if !ok {
                        failures += 1;
                    }
                    let latency = t0.elapsed().saturating_sub(sched);
                    hist.record(latency.as_nanos() as u64);
                }
                (hist, failures)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker panicked"))
            .collect()
    });
    let elapsed = t0.elapsed();
    let mut hist = LatencyHist::new();
    let mut failures = 0;
    for (h, f) in &parts {
        hist.merge(h);
        failures += f;
    }
    (hist, failures, elapsed)
}

/// Run the scenario's saturation ramp. Requires a validated `load`-table
/// scenario; see the module docs for the protocol and the determinism
/// contract.
pub fn run_load(sc: &Scenario) -> Result<LoadReport, ScenarioError> {
    sc.validate()?;
    if sc.table != TableKind::Load {
        return Err(ScenarioError::new(format!(
            "loadgen runs `table = \"load\"` scenarios; `{}` has table \"{}\" \
             (use the `tables` binary for row tables)",
            sc.name,
            sc.table.as_str()
        )));
    }
    let load = sc
        .load
        .clone()
        .expect("validate guarantees [load] on load tables");
    let opts = TrialOptions {
        border: sc.border,
        eval_mcc: sc.router.wants_mcc(),
        eval_rfb: sc.router.wants_rfb(),
        eval_greedy: sc.router.wants_greedy(),
    };
    let geometries: Vec<MeshDims> = std::iter::once(sc.dims).chain(load.alt_dims).collect();
    let total_slots = load.pool * geometries.len();
    let budget = Parallelism::new(sc.threads).from_env().resolve();
    let (workers, intra) = split_budget(budget, total_slots);
    let mut slots: Vec<Slot> = geometries
        .iter()
        .enumerate()
        .flat_map(|(g, &dims)| (0..load.pool).map(move |i| (g, dims, i)))
        .map(|(g, dims, i)| build_slot(sc, dims, g, i, intra))
        .collect();

    let mut steps = Vec::new();
    let mut saturated_at = None;
    let mut op_base = 0u64;
    for step in 0..load.max_steps() {
        let rps = offered_rps(&load, step);
        let plan = plan_step(&load, rps, total_slots, sc.seed_start, op_base);
        op_base += plan.len() as u64;
        let class_count = |class| plan.iter().filter(|op| op.class == class).count() as u64;
        let (hist, failures, elapsed) = execute_step(&mut slots, &plan, workers, intra, opts, sc);
        let ops = plan.len() as u64;
        let fail_rate = failures as f64 / ops as f64;
        let p99_us = hist.percentile(0.99) / 1_000;
        let saturated = p99_us as f64 / 1_000.0 > load.p99_limit_ms || fail_rate > load.fail_limit;
        steps.push(StepReport {
            step,
            offered_rps: rps,
            ops,
            ops_routing: class_count(OpClass::Routing),
            ops_labelling: class_count(OpClass::Labelling),
            ops_churn: class_count(OpClass::Churn),
            failures,
            fail_rate,
            achieved_rps: ops as f64 / elapsed.as_secs_f64(),
            elapsed_ms: elapsed.as_secs_f64() * 1_000.0,
            p50_us: hist.percentile(0.50) / 1_000,
            p99_us,
            p999_us: hist.percentile(0.999) / 1_000,
            saturated,
        });
        if saturated {
            saturated_at = Some(rps);
            break;
        }
    }
    Ok(LoadReport {
        scenario: sc.clone(),
        threads: budget,
        detected_cores: detected_cores(),
        pool_slots: total_slots,
        geometries: geometries.iter().map(|d| dims_label(*d)).collect(),
        steps,
        saturated_at_rps: saturated_at,
    })
}

fn dims_label(dims: MeshDims) -> String {
    match dims {
        MeshDims::D2 { width, height } => format!("{width}x{height}"),
        MeshDims::D3 { x, y, z } => format!("{x}x{y}x{z}"),
    }
}

impl LoadReport {
    /// The machine-readable summary the `loadgen` binary writes (same
    /// hand-built-JSON idiom as the other `BENCH_*.json` snapshots).
    pub fn to_json(&self) -> String {
        let sc = &self.scenario;
        let load = sc
            .load
            .as_ref()
            .expect("load reports come from load scenarios");
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"bench\": \"loadgen\",\n");
        json.push_str(&format!("  \"scenario\": \"{}\",\n", sc.name));
        json.push_str(&crate::report::fault_regime_field(sc.regime.name()));
        json.push_str(&format!("  \"seed\": {},\n", sc.seed_start));
        json.push_str(&format!("  \"threads\": {},\n", self.threads));
        json.push_str(&format!("  \"detected_cores\": {},\n", self.detected_cores));
        json.push_str(&format!("  \"pool_slots\": {},\n", self.pool_slots));
        json.push_str(&format!(
            "  \"geometries\": [{}],\n",
            self.geometries
                .iter()
                .map(|g| format!("\"{g}\""))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        let [r, l, c] = load.mix();
        json.push_str(&format!("  \"mix\": [{r}, {l}, {c}],\n"));
        json.push_str("  \"steps\": [\n");
        for (i, s) in self.steps.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"step\": {}, \"offered_rps\": {}, \"ops\": {}, \
                 \"ops_routing\": {}, \"ops_labelling\": {}, \"ops_churn\": {}, \
                 \"failures\": {}, \"fail_rate\": {:.6}, \"achieved_rps\": {:.2}, \
                 \"elapsed_ms\": {:.3}, \"p50_us\": {}, \"p99_us\": {}, \
                 \"p999_us\": {}, \"saturated\": {}}}{}\n",
                s.step,
                s.offered_rps,
                s.ops,
                s.ops_routing,
                s.ops_labelling,
                s.ops_churn,
                s.failures,
                s.fail_rate,
                s.achieved_rps,
                s.elapsed_ms,
                s.p50_us,
                s.p99_us,
                s.p999_us,
                s.saturated,
                if i + 1 < self.steps.len() { "," } else { "" }
            ));
        }
        json.push_str("  ],\n");
        match self.saturated_at_rps {
            Some(rps) => json.push_str(&format!("  \"saturated_at_rps\": {rps}\n")),
            None => json.push_str("  \"saturated_at_rps\": null\n"),
        }
        json.push_str("}\n");
        json
    }

    /// Render the ramp as an aligned text table for the console.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== {} [{} slots over {}; {} threads / {} cores] ==",
            self.scenario.name,
            self.pool_slots,
            self.geometries.join(" + "),
            self.threads,
            self.detected_cores
        );
        let _ = writeln!(
            out,
            "{:>5} {:>8} {:>8} {:>9} {:>7} {:>9} {:>9} {:>9} {:>5}",
            "step", "rps", "ops", "achieved", "fail%", "p50us", "p99us", "p999us", "sat"
        );
        for s in &self.steps {
            let _ = writeln!(
                out,
                "{:>5} {:>8} {:>8} {:>9.1} {:>7.2} {:>9} {:>9} {:>9} {:>5}",
                s.step,
                s.offered_rps,
                s.ops,
                s.achieved_rps,
                s.fail_rate * 100.0,
                s.p50_us,
                s.p99_us,
                s.p999_us,
                if s.saturated { "YES" } else { "-" }
            );
        }
        match self.saturated_at_rps {
            Some(rps) => {
                let _ = writeln!(out, "saturated at {rps} rps");
            }
            None => {
                let _ = writeln!(out, "ramp completed without saturating");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> LoadProfile {
        LoadProfile {
            initial_rps: 100,
            increment_rps: 50,
            max_rps: 260,
            step_secs: 0.1,
            mix_routing: 0.5,
            mix_labelling: 0.3,
            mix_churn: 0.2,
            pool: 2,
            alt_dims: None,
            p99_limit_ms: 50.0,
            fail_limit: 0.05,
        }
    }

    #[test]
    fn offered_rate_ramps_and_clamps() {
        let load = profile();
        assert_eq!(offered_rps(&load, 0), 100);
        assert_eq!(offered_rps(&load, 1), 150);
        assert_eq!(offered_rps(&load, 3), 250);
        assert_eq!(offered_rps(&load, 4), 260, "clamped to the ceiling");
        assert_eq!(offered_rps(&load, 100), 260);
        assert_eq!(load.max_steps(), 5);
    }

    #[test]
    fn plan_is_deterministic_and_proportional() {
        let load = profile();
        let a = plan_step(&load, 200, 4, 42, 0);
        let b = plan_step(&load, 200, 4, 42, 0);
        assert_eq!(a, b, "same inputs, same plan");
        assert_eq!(a.len(), 20, "round(200 × 0.1)");
        // Error diffusion keeps every class within one op of its share.
        let count = |cl| a.iter().filter(|op| op.class == cl).count() as f64;
        for (cl, w) in [
            (OpClass::Routing, 0.5),
            (OpClass::Labelling, 0.3),
            (OpClass::Churn, 0.2),
        ] {
            assert!((count(cl) - w * 20.0).abs() <= 1.0, "{cl:?} share drifted");
        }
        // Arrivals are evenly spaced at the offered rate and monotone.
        assert_eq!(a[0].sched_ns, 0);
        assert!(a.windows(2).all(|w| w[0].sched_ns < w[1].sched_ns));
        assert_eq!(a[1].sched_ns, 5_000_000, "5 ms gap at 200 rps");
        // Slots rotate round-robin over the whole pool.
        assert!(a.iter().enumerate().all(|(i, op)| op.slot == i % 4));
        // A different op_base continues — not restarts — the sequence.
        let shifted = plan_step(&load, 200, 4, 42, 3);
        assert_ne!(a[0].seed, shifted[0].seed);
        assert_eq!(shifted[0].slot, 3);
    }

    #[test]
    fn plan_with_zero_weight_skips_the_class() {
        let mut load = profile();
        load.mix_churn = 0.0;
        let plan = plan_step(&load, 500, 3, 7, 0);
        assert_eq!(plan.len(), 50);
        assert!(plan.iter().all(|op| op.class != OpClass::Churn));
    }

    #[test]
    fn plan_never_plans_zero_ops() {
        let mut load = profile();
        load.step_secs = 0.05;
        // round(1 × 0.05) = 0, clamped up: the step must do something.
        assert_eq!(plan_step(&load, 1, 2, 0, 0).len(), 1);
    }

    #[test]
    fn slot_seeds_are_decorrelated() {
        let mut seen = std::collections::HashSet::new();
        for g in 0..2 {
            for s in 0..8 {
                for p in 0..3 {
                    assert!(
                        seen.insert(slot_seed(99, g, s, p)),
                        "({g},{s},{p}) collided"
                    );
                }
            }
        }
    }

    #[test]
    fn run_load_rejects_non_load_tables() {
        let sc = Scenario::regions_2d(8, &[2], 4);
        let err = run_load(&sc).unwrap_err();
        assert!(err.to_string().contains("load"), "got: {err}");
    }
}
