//! Snapshot-file writing shared by the `bench_*` / `loadgen` binaries.
//!
//! The binaries' only I/O failure mode is writing their `BENCH_*.json`
//! snapshot; a bare `expect` there dies with a panic backtrace that does
//! not even name the file. [`write_snapshot`] turns the failure into an
//! error message carrying the offending path, so every binary can print
//! `error: cannot write <path>: <why>` and exit nonzero (pinned by the
//! CLI exit-path tests in `tests/loadgen.rs`).

/// Render the `"fault_regime"` snapshot field. Every `BENCH_*.json`
/// names the sampling law its fault populations were drawn from (the
/// fixed-workload benches all use `"uniform"`; the loadgen/service
/// drivers take it from the scenario's regime), so snapshots measured
/// under different regimes are never compared by accident.
pub fn fault_regime_field(regime: &str) -> String {
    format!("  \"fault_regime\": \"{regime}\",\n")
}

/// Write `contents` to `path`; on failure the error names the path.
pub fn write_snapshot(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("cannot write {path}: {e}"))
}

/// [`write_snapshot`], then either confirm the file on stdout or print
/// `error: …` and exit 1 — the shared tail of every `bench_*` binary.
pub fn write_snapshot_or_exit(path: &str, contents: &str) {
    if let Err(e) = write_snapshot(path, contents) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::write_snapshot;

    #[test]
    fn failure_names_the_offending_path() {
        let path = "/nonexistent-dir-for-mcc-bench-tests/snap.json";
        let err = write_snapshot(path, "{}").unwrap_err();
        assert!(err.contains(path), "error must name the path: {err}");
        assert!(err.starts_with("cannot write"), "got: {err}");
    }

    #[test]
    fn success_writes_the_contents() {
        let path = std::env::temp_dir().join(format!("mcc-report-{}.json", std::process::id()));
        let path_str = path.to_string_lossy().into_owned();
        write_snapshot(&path_str, "{\"ok\": true}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\": true}\n");
        let _ = std::fs::remove_file(&path);
    }
}
