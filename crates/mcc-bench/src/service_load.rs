//! Saturation ramps against the crash-safe resident service.
//!
//! Where [`crate::loadgen`] drives the model kernels directly, this
//! driver offers the same open-loop schedule to a journaled
//! [`mesh_service::MeshService`]: every planned op becomes a request
//! against one of the service's shards, passes that shard's bounded
//! virtual-time admission queue, and is either executed (route / region
//! query / churn, durably journaled) or **shed** with a typed
//! [`ServiceError::Overloaded`]/[`ServiceError::Deadline`] error. The
//! interesting measurement beyond E13/E14 is therefore the *shed-rate*
//! curve: how gracefully the service refuses work beyond saturation
//! instead of letting latency collapse.
//!
//! **Determinism contract.** The request sequence is the same
//! deterministic plan as [`crate::loadgen::plan_step`], and each shard's
//! requests are issued in schedule order by a single worker, so the
//! admission verdicts — a pure fold of the virtual-time queue over the
//! plan — are deterministic too. Everything in the rendered table
//! (admit/shed/reject counts, shed rate, final shard generations) is a
//! pure function of the scenario; only the JSON's latency percentiles and
//! throughput fields are wall-clock. Pinned by the `e15_service` golden
//! snapshot and the service-loadgen integration tests.
//!
//! Shard journals live under a per-run temp directory that is removed
//! when the run finishes; the bootstrap fault population is applied as an
//! explicit journaled churn batch *before* the service starts, so it
//! bypasses admission and is covered by recovery like any other write.

use std::time::{Duration, Instant};

use mesh_service::{
    AdmissionConfig, CrashPoint, Geometry, MeshService, Request, Response, ServiceConfig,
    ServiceError, ShardCore, ShardSpec, SyncPolicy,
};
use mesh_topo::par::bands;
use mesh_topo::{detected_cores, Mesh2D, Mesh3D, Parallelism};
use serde::{Deserialize, Serialize};

use crate::hist::LatencyHist;
use crate::loadgen::{offered_rps, plan_step, slot_seed, OpClass, OpSpec};
use crate::scenario::{MeshDims, Scenario, ScenarioError, TableKind};

/// Per-step measurements. Every field except the explicitly wall-clock
/// ones (`achieved_rps`, `elapsed_ms`, the percentiles) is deterministic
/// for a fixed scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServiceStepReport {
    /// 0-based ramp step index.
    pub step: usize,
    /// Offered rate this step ran at.
    pub offered_rps: u32,
    /// Ops issued (deterministic: `max(1, round(rps × step_secs))`).
    pub ops: u64,
    /// Ops the admission layer accepted and the shards executed.
    pub admitted: u64,
    /// Ops shed because the shard's queue was at capacity.
    pub shed_overloaded: u64,
    /// Ops shed because their simulated wait exceeded the deadline.
    pub shed_deadline: u64,
    /// Ops rejected as malformed/unsatisfiable (e.g. no healthy pair).
    pub rejected: u64,
    /// Admitted route ops whose packet was not delivered (deterministic —
    /// the router is).
    pub undelivered: u64,
    /// `(shed_overloaded + shed_deadline) / ops`.
    pub shed_rate: f64,
    /// Completed ops per wall-clock second (wall-clock).
    pub achieved_rps: f64,
    /// Step wall-clock duration in milliseconds (wall-clock).
    pub elapsed_ms: f64,
    /// Latency percentiles over the step's **admitted** ops, µs, measured
    /// from each op's scheduled arrival to its completion (wall-clock).
    pub p50_us: u64,
    /// 99th percentile of admitted-op latency (wall-clock).
    pub p99_us: u64,
    /// 99.9th percentile of admitted-op latency (wall-clock).
    pub p999_us: u64,
    /// Whether this step crossed the saturation threshold (shed rate over
    /// the profile's `fail_limit` — deterministic by design).
    pub saturated: bool,
}

/// The outcome of one service saturation ramp.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServiceLoadReport {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// Resolved per-shard thread budget for model computations.
    pub threads: usize,
    /// Hardware threads the platform reports (for cross-machine reading).
    pub detected_cores: usize,
    /// Number of service shards (`pool × geometries`).
    pub shards: usize,
    /// The shard mesh geometries, e.g. `["16x16", "6x6x6"]`.
    pub geometries: Vec<String>,
    /// One report per executed ramp step, in ramp order.
    pub steps: Vec<ServiceStepReport>,
    /// The offered rate at which the ramp saturated, if it did before
    /// reaching `max_rps`.
    pub saturated_at_rps: Option<u32>,
    /// Final durable churn generation of every shard, in shard order
    /// (deterministic: the bootstrap batch plus every admitted churn op).
    pub final_gens: Vec<u64>,
    /// Total supervisor-recorded shard recoveries (0 in a healthy run).
    pub recoveries: u64,
}

/// The request a planned op turns into, against shard `op.slot`.
fn op_request(op: &OpSpec, min_dist: u32) -> Request {
    match op.class {
        OpClass::Routing => Request::RouteRandom {
            seed: op.seed,
            min_dist,
        },
        OpClass::Labelling => Request::QueryRandom { seed: op.seed },
        OpClass::Churn => Request::ChurnRandom { seed: op.seed },
    }
}

fn dims_label(dims: MeshDims) -> String {
    match dims {
        MeshDims::D2 { width, height } => format!("{width}x{height}"),
        MeshDims::D3 { x, y, z } => format!("{x}x{y}x{z}"),
    }
}

fn dims_geometry(dims: MeshDims, wrap: bool) -> Geometry {
    match dims {
        MeshDims::D2 { width, height } => Geometry::M2 {
            width,
            height,
            wrap,
        },
        MeshDims::D3 { x, y, z } => Geometry::M3 {
            nx: x,
            ny: y,
            nz: z,
            wrap,
        },
    }
}

/// Journal the shard's bootstrap fault population (the scenario's fixed
/// fault count, decorrelated per shard) as one explicit churn batch, so
/// the service opens onto an already-faulted, durably recorded mesh.
fn bootstrap_shard(
    sc: &Scenario,
    dir: &std::path::Path,
    spec: ShardSpec,
    dims: MeshDims,
    geometry: usize,
    index: usize,
) -> Result<(), ScenarioError> {
    let count = sc.fault_counts[0];
    let seed = slot_seed(sc.seed_start, geometry, index, 3);
    let mut core = ShardCore::open(dir, spec, Parallelism::SEQ, CrashPoint::none())
        .map_err(|e| ScenarioError::new(format!("bootstrap shard {index}: {e}")))?;
    let req = match dims {
        MeshDims::D2 { width, height } => {
            let mut mesh = if sc.wrap {
                Mesh2D::torus(width, height)
            } else {
                Mesh2D::new(width, height)
            };
            sc.inject_2d(&mut mesh, count, seed, &[]);
            Request::Churn2 {
                injected: mesh.faults().to_vec(),
                healed: vec![],
            }
        }
        MeshDims::D3 { x, y, z } => {
            let mut mesh = if sc.wrap {
                Mesh3D::torus(x, y, z)
            } else {
                Mesh3D::new(x, y, z)
            };
            sc.inject_3d(&mut mesh, count, seed, &[]);
            Request::Churn3 {
                injected: mesh.faults().to_vec(),
                healed: vec![],
            }
        }
    };
    if count > 0 {
        core.handle(&req)
            .map_err(|e| ScenarioError::new(format!("bootstrap churn on shard {index}: {e}")))?;
    }
    Ok(())
}

/// Run the scenario's ramp against a resident service. Requires a
/// validated `service`-table scenario; see the module docs for the
/// protocol and the determinism contract.
pub fn run_service_load(sc: &Scenario) -> Result<ServiceLoadReport, ScenarioError> {
    sc.validate()?;
    if sc.table != TableKind::Service {
        return Err(ScenarioError::new(format!(
            "the service driver runs `table = \"service\"` scenarios; `{}` has \
             table \"{}\"",
            sc.name,
            sc.table.as_str()
        )));
    }
    let load = sc
        .load
        .clone()
        .expect("validate guarantees [load] on service tables");
    let profile = sc
        .service
        .clone()
        .expect("validate guarantees [service] on service tables");

    let geometries: Vec<MeshDims> = std::iter::once(sc.dims).chain(load.alt_dims).collect();
    let shards_n = load.pool * geometries.len();
    let shard_dims: Vec<MeshDims> = geometries
        .iter()
        .flat_map(|&dims| std::iter::repeat_n(dims, load.pool))
        .collect();
    let min_dists: Vec<u32> = shard_dims
        .iter()
        .map(|dims| (dims.max_extent() as f64 * sc.min_dist_frac).round() as u32)
        .collect();
    let threads = Parallelism::new(sc.threads).from_env();

    // Shard journals live for exactly this run.
    let root = mesh_service::testutil::TempDir::new("loadgen");
    let specs: Vec<ShardSpec> = shard_dims
        .iter()
        .map(|&dims| {
            let mut spec = ShardSpec::new(dims_geometry(dims, sc.wrap), profile.snapshot_every);
            spec.border = sc.border;
            spec.sync = SyncPolicy::Never;
            spec
        })
        .collect();
    for (i, (&dims, &spec)) in shard_dims.iter().zip(&specs).enumerate() {
        let dir = root.path().join(format!("shard-{i:04}"));
        bootstrap_shard(sc, &dir, spec, dims, i / load.pool, i % load.pool)?;
    }

    let mut cfg = ServiceConfig::new(root.path());
    cfg.threads = threads;
    cfg.admission = AdmissionConfig {
        queue_cap: profile.queue_cap,
        deadline_ns: (profile.deadline_ms * 1_000_000.0) as u64,
        cost_ns: profile.cost_us.map(|c| c * 1_000),
    };
    cfg.timeout = Duration::from_secs(60);
    let svc = MeshService::start(cfg, &specs)
        .map_err(|e| ScenarioError::new(format!("service start: {e}")))?;

    let workers = detected_cores().min(shards_n).max(1);
    let mut steps = Vec::new();
    let mut saturated_at = None;
    let mut op_base = 0u64;
    // Steps tile one continuous virtual timeline (each lasts exactly
    // `step_secs` of virtual time), so the admission queue drains between
    // steps exactly as the open-loop schedule says it should.
    let step_ns = (load.step_secs * 1e9) as u64;
    for step in 0..load.max_steps() {
        let rps = offered_rps(&load, step);
        let plan = plan_step(&load, rps, shards_n, sc.seed_start, op_base);
        op_base += plan.len() as u64;
        let virtual_base = step as u64 * step_ns;
        let (tallies, hist, elapsed) = execute_step(&svc, &plan, workers, &min_dists, virtual_base);
        let ops = plan.len() as u64;
        let shed = tallies.shed_overloaded + tallies.shed_deadline;
        let shed_rate = shed as f64 / ops as f64;
        let saturated = shed_rate > load.fail_limit;
        steps.push(ServiceStepReport {
            step,
            offered_rps: rps,
            ops,
            admitted: tallies.admitted,
            shed_overloaded: tallies.shed_overloaded,
            shed_deadline: tallies.shed_deadline,
            rejected: tallies.rejected,
            undelivered: tallies.undelivered,
            shed_rate,
            achieved_rps: ops as f64 / elapsed.as_secs_f64(),
            elapsed_ms: elapsed.as_secs_f64() * 1_000.0,
            p50_us: hist.percentile(0.50) / 1_000,
            p99_us: hist.percentile(0.99) / 1_000,
            p999_us: hist.percentile(0.999) / 1_000,
            saturated,
        });
        if saturated {
            saturated_at = Some(rps);
            break;
        }
    }

    let mut final_gens = Vec::with_capacity(shards_n);
    let mut recoveries = 0;
    for shard in 0..shards_n {
        match svc.call(shard, Request::Stats, 0) {
            Ok(Response::Stats(s)) => {
                final_gens.push(s.gen);
                recoveries += s.recoveries;
            }
            other => {
                return Err(ScenarioError::new(format!(
                    "final stats on shard {shard}: {other:?}"
                )))
            }
        }
    }
    svc.shutdown();

    Ok(ServiceLoadReport {
        scenario: sc.clone(),
        threads: threads.resolve(),
        detected_cores: detected_cores(),
        shards: shards_n,
        geometries: geometries.iter().map(|d| dims_label(*d)).collect(),
        steps,
        saturated_at_rps: saturated_at,
        final_gens,
        recoveries,
    })
}

#[derive(Default)]
struct Tallies {
    admitted: u64,
    shed_overloaded: u64,
    shed_deadline: u64,
    rejected: u64,
    undelivered: u64,
}

/// Issue one step's plan: shards are sharded contiguously over `workers`
/// scoped threads, each worker walks its shards' ops in schedule order
/// (so per-shard request order — and with it every admission verdict —
/// is deterministic), sleeps until each op's scheduled arrival, and
/// records admitted-op latency from the scheduled arrival.
fn execute_step(
    svc: &MeshService,
    plan: &[OpSpec],
    workers: usize,
    min_dists: &[u32],
    virtual_base: u64,
) -> (Tallies, LatencyHist, Duration) {
    let ranges = bands(min_dists.len(), workers);
    let t0 = Instant::now();
    let parts: Vec<(Tallies, LatencyHist)> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|range| {
                let range = range.clone();
                scope.spawn(move || {
                    let mut tallies = Tallies::default();
                    let mut hist = LatencyHist::new();
                    for op in plan.iter().filter(|op| range.contains(&op.slot)) {
                        let sched = Duration::from_nanos(op.sched_ns);
                        if let Some(wait) = sched.checked_sub(t0.elapsed()) {
                            std::thread::sleep(wait);
                        }
                        let req = op_request(op, min_dists[op.slot]);
                        match svc.call(op.slot, req, virtual_base + op.sched_ns) {
                            Ok(resp) => {
                                tallies.admitted += 1;
                                if let Response::Route {
                                    delivered: false, ..
                                } = resp
                                {
                                    tallies.undelivered += 1;
                                }
                                let latency = t0.elapsed().saturating_sub(sched);
                                hist.record(latency.as_nanos() as u64);
                            }
                            Err(ServiceError::Overloaded { .. }) => tallies.shed_overloaded += 1,
                            Err(ServiceError::Deadline { .. }) => tallies.shed_deadline += 1,
                            Err(ServiceError::Rejected { .. }) => tallies.rejected += 1,
                            Err(e) => panic!("service op on shard {}: {e}", op.slot),
                        }
                    }
                    (tallies, hist)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("service loadgen worker panicked"))
            .collect()
    });
    let elapsed = t0.elapsed();
    let mut tallies = Tallies::default();
    let mut hist = LatencyHist::new();
    for (t, h) in &parts {
        tallies.admitted += t.admitted;
        tallies.shed_overloaded += t.shed_overloaded;
        tallies.shed_deadline += t.shed_deadline;
        tallies.rejected += t.rejected;
        tallies.undelivered += t.undelivered;
        hist.merge(h);
    }
    (tallies, hist, elapsed)
}

impl ServiceLoadReport {
    /// The machine-readable summary the `loadgen` binary writes (same
    /// hand-built-JSON idiom as the other `BENCH_*.json` snapshots).
    pub fn to_json(&self) -> String {
        let sc = &self.scenario;
        let service = sc
            .service
            .as_ref()
            .expect("service reports come from service scenarios");
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"bench\": \"service\",\n");
        json.push_str(&format!("  \"scenario\": \"{}\",\n", sc.name));
        json.push_str(&crate::report::fault_regime_field(sc.regime.name()));
        json.push_str(&format!("  \"seed\": {},\n", sc.seed_start));
        json.push_str(&format!("  \"threads\": {},\n", self.threads));
        json.push_str(&format!("  \"detected_cores\": {},\n", self.detected_cores));
        json.push_str(&format!("  \"shards\": {},\n", self.shards));
        json.push_str(&format!(
            "  \"geometries\": [{}],\n",
            self.geometries
                .iter()
                .map(|g| format!("\"{g}\""))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        json.push_str(&format!(
            "  \"queue_cap\": {}, \"deadline_ms\": {}, \"cost_us\": [{}, {}, {}], \
             \"snapshot_every\": {},\n",
            service.queue_cap,
            service.deadline_ms,
            service.cost_us[0],
            service.cost_us[1],
            service.cost_us[2],
            service.snapshot_every,
        ));
        json.push_str("  \"steps\": [\n");
        for (i, s) in self.steps.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"step\": {}, \"offered_rps\": {}, \"ops\": {}, \
                 \"admitted\": {}, \"shed_overloaded\": {}, \"shed_deadline\": {}, \
                 \"rejected\": {}, \"undelivered\": {}, \"shed_rate\": {:.6}, \
                 \"achieved_rps\": {:.2}, \"elapsed_ms\": {:.3}, \"p50_us\": {}, \
                 \"p99_us\": {}, \"p999_us\": {}, \"saturated\": {}}}{}\n",
                s.step,
                s.offered_rps,
                s.ops,
                s.admitted,
                s.shed_overloaded,
                s.shed_deadline,
                s.rejected,
                s.undelivered,
                s.shed_rate,
                s.achieved_rps,
                s.elapsed_ms,
                s.p50_us,
                s.p99_us,
                s.p999_us,
                s.saturated,
                if i + 1 < self.steps.len() { "," } else { "" }
            ));
        }
        json.push_str("  ],\n");
        match self.saturated_at_rps {
            Some(rps) => json.push_str(&format!("  \"saturated_at_rps\": {rps},\n")),
            None => json.push_str("  \"saturated_at_rps\": null,\n"),
        }
        json.push_str(&format!(
            "  \"final_gens\": [{}],\n",
            self.final_gens
                .iter()
                .map(|g| g.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        json.push_str(&format!("  \"recoveries\": {}\n", self.recoveries));
        json.push_str("}\n");
        json
    }

    /// Render the ramp as an aligned text table for the console.
    ///
    /// Every printed character is deterministic for a fixed scenario —
    /// no thread counts, no wall-clock fields — so service tables are
    /// golden-snapshot stable (the latency percentiles live in the JSON
    /// summary instead).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let sc = &self.scenario;
        let service = sc
            .service
            .as_ref()
            .expect("service reports come from service scenarios");
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== {} [{} shards over {}; queue {}, deadline {} ms] ==",
            sc.name,
            self.shards,
            self.geometries.join(" + "),
            service.queue_cap,
            service.deadline_ms,
        );
        let _ = writeln!(
            out,
            "{:>5} {:>8} {:>8} {:>8} {:>9} {:>9} {:>7} {:>7} {:>7} {:>5}",
            "step", "rps", "ops", "admit", "shedover", "sheddead", "rej", "undeliv", "shed%", "sat"
        );
        for s in &self.steps {
            let _ = writeln!(
                out,
                "{:>5} {:>8} {:>8} {:>8} {:>9} {:>9} {:>7} {:>7} {:>7.2} {:>5}",
                s.step,
                s.offered_rps,
                s.ops,
                s.admitted,
                s.shed_overloaded,
                s.shed_deadline,
                s.rejected,
                s.undelivered,
                s.shed_rate * 100.0,
                if s.saturated { "YES" } else { "-" }
            );
        }
        match self.saturated_at_rps {
            Some(rps) => {
                let _ = writeln!(out, "saturated at {rps} rps (shed rate over fail_limit)");
            }
            None => {
                let _ = writeln!(out, "ramp completed without saturating");
            }
        }
        let _ = writeln!(
            out,
            "final shard generations: [{}]",
            self.final_gens
                .iter()
                .map(|g| g.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        out
    }
}
