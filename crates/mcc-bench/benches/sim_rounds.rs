//! Engine benchmark: the distributed labelling protocol on the flat
//! index-addressed engine vs the pre-refactor hash-addressed engine.
//!
//! Identical protocol logic, identical round/message counts (pinned by the
//! parity tests in `mcc-protocols`); the only variable is the engine. The
//! `bench_sim` binary runs the big 128²/32³ cases and snapshots
//! `BENCH_sim_rounds.json`; this criterion bench covers smaller sizes so
//! the comparison stays runnable in a routine `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcc_protocols::labelling::{DistLabelling2, DistLabelling3};
use mcc_protocols::reference::{RefDistLabelling2, RefDistLabelling3};
use mesh_topo::{FaultSpec, Frame2, Frame3, Mesh2D, Mesh3D};

const FAULT_FRACTION: f64 = 0.20;
const SEED: u64 = 42;

fn mesh_2d(width: i32) -> Mesh2D {
    let mut mesh = Mesh2D::kary(width);
    let faults = (mesh.node_count() as f64 * FAULT_FRACTION) as usize;
    FaultSpec::uniform(faults, SEED).inject_2d(&mut mesh, &[]);
    mesh
}

fn mesh_3d(k: i32) -> Mesh3D {
    let mut mesh = Mesh3D::kary(k);
    let faults = (mesh.node_count() as f64 * FAULT_FRACTION) as usize;
    FaultSpec::uniform(faults, SEED).inject_3d(&mut mesh, &[]);
    mesh
}

fn bench_labelling_2d(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_rounds_labelling_2d");
    g.sample_size(10);
    for width in [32i32, 64] {
        let mesh = mesh_2d(width);
        g.bench_with_input(BenchmarkId::new("flat", width), &mesh, |b, m| {
            b.iter(|| DistLabelling2::run(m, Frame2::identity(m)).stats.messages)
        });
        g.bench_with_input(BenchmarkId::new("hash", width), &mesh, |b, m| {
            b.iter(|| {
                RefDistLabelling2::run(m, Frame2::identity(m))
                    .stats
                    .messages
            })
        });
    }
    g.finish();
}

fn bench_labelling_3d(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_rounds_labelling_3d");
    g.sample_size(10);
    for k in [12i32, 16] {
        let mesh = mesh_3d(k);
        g.bench_with_input(BenchmarkId::new("flat", k), &mesh, |b, m| {
            b.iter(|| DistLabelling3::run(m, Frame3::identity(m)).stats.messages)
        });
        g.bench_with_input(BenchmarkId::new("hash", k), &mesh, |b, m| {
            b.iter(|| {
                RefDistLabelling3::run(m, Frame3::identity(m))
                    .stats
                    .messages
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_labelling_2d, bench_labelling_3d);
criterion_main!(benches);
