//! Benchmarks for the routing kernels behind tables E3/E4/E6: detection
//! walks/floods, the two-phase routers, and whole trials.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fault_model::mcc2::MccSet2;
use fault_model::mcc3::MccSet3;
use fault_model::{BorderPolicy, Labelling2, Labelling3};
use mcc_routing::policy::Policy;
use mcc_routing::trial::{run_trial_2d, run_trial_3d};
use mcc_routing::{detect_2d, detect_3d, Router2, Router3};
use mesh_topo::coord::{c2, c3};
use mesh_topo::{FaultSpec, Frame2, Frame3, Mesh2D, Mesh3D};

fn bench_detection(c: &mut Criterion) {
    let mut g = c.benchmark_group("detection");
    g.sample_size(30);
    let mut mesh = Mesh2D::new(32, 32);
    FaultSpec::uniform(20, 7).inject_2d(&mut mesh, &[c2(0, 0), c2(31, 31)]);
    let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
    if lab.is_safe(c2(0, 0)) && lab.is_safe(c2(31, 31)) {
        g.bench_function("walks_2d_32x32", |b| {
            b.iter(|| detect_2d(&lab, c2(0, 0), c2(31, 31)).feasible())
        });
    }
    let mut mesh3 = Mesh3D::kary(16);
    FaultSpec::uniform(60, 7).inject_3d(&mut mesh3, &[c3(0, 0, 0), c3(15, 15, 15)]);
    let lab3 = Labelling3::compute(&mesh3, Frame3::identity(&mesh3), BorderPolicy::BorderSafe);
    if lab3.is_safe(c3(0, 0, 0)) && lab3.is_safe(c3(15, 15, 15)) {
        g.bench_function("floods_3d_16cubed", |b| {
            b.iter(|| detect_3d(&lab3, c3(0, 0, 0), c3(15, 15, 15)).feasible())
        });
    }
    g.finish();
}

fn bench_routers(c: &mut Criterion) {
    let mut g = c.benchmark_group("router");
    g.sample_size(30);
    let mut mesh = Mesh2D::new(32, 32);
    FaultSpec::uniform(20, 9).inject_2d(&mut mesh, &[c2(0, 0), c2(31, 31)]);
    let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
    let set = MccSet2::compute(&lab);
    let router = Router2::new(&lab, &set);
    g.bench_function("route_2d_32x32_corner_to_corner", |b| {
        b.iter(|| {
            let mut p = Policy::balanced();
            router.route(c2(0, 0), c2(31, 31), &mut p).delivered()
        })
    });
    let mut mesh3 = Mesh3D::kary(16);
    FaultSpec::uniform(60, 9).inject_3d(&mut mesh3, &[c3(0, 0, 0), c3(15, 15, 15)]);
    let lab3 = Labelling3::compute(&mesh3, Frame3::identity(&mesh3), BorderPolicy::BorderSafe);
    let set3 = MccSet3::compute(&lab3);
    let router3 = Router3::new(&lab3, &set3);
    g.bench_function("route_3d_16cubed_corner_to_corner", |b| {
        b.iter(|| {
            let mut p = Policy::balanced();
            router3
                .route(c3(0, 0, 0), c3(15, 15, 15), &mut p)
                .delivered()
        })
    });
    g.finish();
}

fn bench_trials(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_trial");
    g.sample_size(10);
    for faults in [10usize, 30] {
        g.bench_with_input(
            BenchmarkId::new("trial_2d_32x32", faults),
            &faults,
            |b, &n| {
                b.iter(|| {
                    let mut mesh = Mesh2D::new(32, 32);
                    FaultSpec::uniform(n, 11).inject_2d(&mut mesh, &[c2(1, 2), c2(30, 29)]);
                    run_trial_2d(&mesh, c2(1, 2), c2(30, 29), 3)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("trial_3d_12cubed", faults),
            &faults,
            |b, &n| {
                b.iter(|| {
                    let mut mesh = Mesh3D::kary(12);
                    FaultSpec::uniform(n, 11).inject_3d(&mut mesh, &[c3(0, 1, 2), c3(11, 10, 9)]);
                    run_trial_3d(&mesh, c3(0, 1, 2), c3(11, 10, 9), 3)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_detection, bench_routers, bench_trials);
criterion_main!(benches);
