//! Benchmarks for the distributed protocols behind tables E5/E7:
//! labelling convergence, the full 2-D construction pipeline, detection
//! floods and distributed routing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcc_protocols::boundary2::build_pipeline_2d;
use mcc_protocols::labelling::{DistLabelling2, DistLabelling3};
use mcc_protocols::route2::route_distributed_2d;
use mesh_topo::coord::{c2, c3};
use mesh_topo::{FaultSpec, Frame2, Frame3, Mesh2D, Mesh3D};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn interior_mesh2(width: i32, faults: usize, seed: u64) -> Mesh2D {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut mesh = Mesh2D::new(width, width);
    let mut placed = 0;
    while placed < faults {
        let c = c2(rng.gen_range(1..width - 1), rng.gen_range(1..width - 1));
        if mesh.is_healthy(c) {
            mesh.inject_fault(c);
            placed += 1;
        }
    }
    mesh
}

fn bench_labelling_protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_distributed_labelling");
    g.sample_size(10);
    for faults in [10usize, 30] {
        let mesh = interior_mesh2(24, faults, 5);
        g.bench_with_input(BenchmarkId::new("2d_24x24", faults), &mesh, |b, m| {
            b.iter(|| DistLabelling2::run(m, Frame2::identity(m)).stats.messages)
        });
    }
    let mut mesh3 = Mesh3D::kary(10);
    FaultSpec::uniform(40, 5).inject_3d(&mut mesh3, &[]);
    g.bench_function("3d_10cubed_40faults", |b| {
        b.iter(|| {
            DistLabelling3::run(&mesh3, Frame3::identity(&mesh3))
                .stats
                .messages
        })
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_construction_pipeline_2d");
    g.sample_size(10);
    for faults in [5usize, 15] {
        let mesh = interior_mesh2(20, faults, 6);
        g.bench_with_input(BenchmarkId::new("20x20", faults), &mesh, |b, m| {
            b.iter(|| build_pipeline_2d(m, Frame2::identity(m)).1.total_messages())
        });
    }
    g.finish();
}

fn bench_distributed_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("distributed_routing_2d");
    g.sample_size(10);
    let mesh = interior_mesh2(20, 10, 8);
    let (bound, _) = build_pipeline_2d(&mesh, Frame2::identity(&mesh));
    let lab = fault_model::Labelling2::compute(
        &mesh,
        Frame2::identity(&mesh),
        fault_model::BorderPolicy::BorderSafe,
    );
    if lab.is_safe(c2(0, 0)) && lab.is_safe(c2(19, 19)) {
        g.bench_function("detect_plus_data_20x20", |b| {
            b.iter(|| route_distributed_2d(&mesh, &bound, c2(0, 0), c2(19, 19)).feasible)
        });
    }
    let _ = c3(0, 0, 0);
    g.finish();
}

criterion_group!(
    benches,
    bench_labelling_protocol,
    bench_pipeline,
    bench_distributed_routing
);
criterion_main!(benches);
