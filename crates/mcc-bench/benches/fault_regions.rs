//! Benchmarks for the fault-region kernels behind tables E1/E2:
//! labelling closures, MCC extraction and the block baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fault_model::mcc2::MccSet2;
use fault_model::mcc3::MccSet3;
use fault_model::{BorderPolicy, FaultBlocks2, FaultBlocks3, Labelling2, Labelling3};
use mesh_topo::{FaultSpec, Frame2, Frame3, Mesh2D, Mesh3D};

fn mesh2(width: i32, faults: usize) -> Mesh2D {
    let mut mesh = Mesh2D::new(width, width);
    FaultSpec::uniform(faults, 42).inject_2d(&mut mesh, &[]);
    mesh
}

fn mesh3(k: i32, faults: usize) -> Mesh3D {
    let mut mesh = Mesh3D::kary(k);
    FaultSpec::uniform(faults, 42).inject_3d(&mut mesh, &[]);
    mesh
}

fn bench_fault_regions_2d(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_fault_regions_2d_32x32");
    g.sample_size(20);
    for faults in [10usize, 30, 50] {
        let mesh = mesh2(32, faults);
        g.bench_with_input(BenchmarkId::new("mcc_labelling", faults), &mesh, |b, m| {
            b.iter(|| {
                let lab = Labelling2::compute(m, Frame2::identity(m), BorderPolicy::BorderSafe);
                MccSet2::compute(&lab).total_sacrificed()
            })
        });
        g.bench_with_input(BenchmarkId::new("rfb_blocks", faults), &mesh, |b, m| {
            b.iter(|| FaultBlocks2::compute(m).sacrificed_count())
        });
    }
    g.finish();
}

fn bench_fault_regions_3d(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_fault_regions_3d_16cubed");
    g.sample_size(10);
    for faults in [20usize, 60, 120] {
        let mesh = mesh3(16, faults);
        g.bench_with_input(BenchmarkId::new("mcc_labelling", faults), &mesh, |b, m| {
            b.iter(|| {
                let lab = Labelling3::compute(m, Frame3::identity(m), BorderPolicy::BorderSafe);
                MccSet3::compute(&lab).total_sacrificed()
            })
        });
        g.bench_with_input(BenchmarkId::new("rfb_blocks", faults), &mesh, |b, m| {
            b.iter(|| FaultBlocks3::compute(m).sacrificed_count())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fault_regions_2d, bench_fault_regions_3d);
criterion_main!(benches);
