//! Trial-pipeline benchmark: fresh-per-trial model construction vs the
//! prepared-mesh pipeline of `mcc_routing::prepared`.
//!
//! Identical trial logic and identical `TrialResult`s (pinned by the
//! property battery in `mcc-routing/tests/prepared_equiv.rs`); the only
//! variable is whether labelling/MCC/block models are rebuilt per pair or
//! cached per orientation with reusable scratch. The `bench_trials`
//! binary runs the big E3/E4-ramp cases (up to 128² / 24³) and snapshots
//! `BENCH_routing_trials.json`; this criterion bench covers smaller sizes
//! so the comparison stays runnable in a routine `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcc_routing::prepared::{PreparedMesh2, PreparedMesh3};
use mcc_routing::trial::{run_trial_2d_with, run_trial_3d_with, TrialOptions};
use mesh_topo::coord::{c2, c3};
use mesh_topo::{FaultSpec, Mesh2D, Mesh3D, C2, C3};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 42;
const PAIRS: usize = 16;

fn setup_2d(width: i32, faults: usize) -> (Mesh2D, Vec<(C2, C2, u64)>) {
    let mut rng = SmallRng::seed_from_u64(SEED);
    let mut mesh = Mesh2D::kary(width);
    FaultSpec::uniform(faults, rng.gen()).inject_2d(&mut mesh, &[]);
    let min_dist = (width / 2) as u32;
    let mut pairs = Vec::with_capacity(PAIRS);
    while pairs.len() < PAIRS {
        let s = c2(rng.gen_range(0..width), rng.gen_range(0..width));
        let d = c2(rng.gen_range(0..width), rng.gen_range(0..width));
        if s.dist(d) >= min_dist && mesh.is_healthy(s) && mesh.is_healthy(d) {
            pairs.push((s, d, rng.gen()));
        }
    }
    (mesh, pairs)
}

fn setup_3d(k: i32, faults: usize) -> (Mesh3D, Vec<(C3, C3, u64)>) {
    let mut rng = SmallRng::seed_from_u64(SEED);
    let mut mesh = Mesh3D::kary(k);
    FaultSpec::uniform(faults, rng.gen()).inject_3d(&mut mesh, &[]);
    let min_dist = k as u32;
    let mut pairs = Vec::with_capacity(PAIRS);
    while pairs.len() < PAIRS {
        let s = c3(
            rng.gen_range(0..k),
            rng.gen_range(0..k),
            rng.gen_range(0..k),
        );
        let d = c3(
            rng.gen_range(0..k),
            rng.gen_range(0..k),
            rng.gen_range(0..k),
        );
        if s.dist(d) >= min_dist && mesh.is_healthy(s) && mesh.is_healthy(d) {
            pairs.push((s, d, rng.gen()));
        }
    }
    (mesh, pairs)
}

fn bench_trials_2d(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing_trials_2d");
    g.sample_size(10);
    let opts = TrialOptions::default();
    for width in [24i32, 32] {
        let faults = (width * width / 50) as usize;
        let (mesh, pairs) = setup_2d(width, faults);
        g.bench_with_input(BenchmarkId::new("fresh", width), &pairs, |b, pairs| {
            b.iter(|| {
                pairs
                    .iter()
                    .filter(|&&(s, d, seed)| {
                        run_trial_2d_with(&mesh, s, d, seed, &opts).mcc_delivered
                    })
                    .count()
            })
        });
        g.bench_with_input(BenchmarkId::new("prepared", width), &pairs, |b, pairs| {
            b.iter(|| {
                let mut pm = PreparedMesh2::new(&mesh, opts);
                pairs
                    .iter()
                    .filter(|&&(s, d, seed)| pm.run_trial(s, d, seed).mcc_delivered)
                    .count()
            })
        });
    }
    g.finish();
}

fn bench_trials_3d(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing_trials_3d");
    g.sample_size(10);
    let opts = TrialOptions::default();
    for k in [10i32, 12] {
        let faults = (k * k * k / 40) as usize;
        let (mesh, pairs) = setup_3d(k, faults);
        g.bench_with_input(BenchmarkId::new("fresh", k), &pairs, |b, pairs| {
            b.iter(|| {
                pairs
                    .iter()
                    .filter(|&&(s, d, seed)| {
                        run_trial_3d_with(&mesh, s, d, seed, &opts).mcc_delivered
                    })
                    .count()
            })
        });
        g.bench_with_input(BenchmarkId::new("prepared", k), &pairs, |b, pairs| {
            b.iter(|| {
                let mut pm = PreparedMesh3::new(&mesh, opts);
                pairs
                    .iter()
                    .filter(|&&(s, d, seed)| pm.run_trial(s, d, seed).mcc_delivered)
                    .count()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_trials_2d, bench_trials_3d);
criterion_main!(benches);
