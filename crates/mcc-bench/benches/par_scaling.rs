//! Intra-mesh parallel scaling: the tiled wavefront labelling
//! (`compute_par`) at thread budgets 1/2/4/8 against the sequential
//! raster sweeps, on 256²/512² and 48³/64³ meshes at 20% uniform faults.
//!
//! The `bench_par` binary runs the full-size cases (1024² and 128³),
//! verifies the parallel output bit-for-bit against sequential, and
//! snapshots the results to `BENCH_par_scaling.json` at the workspace
//! root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fault_model::{BorderPolicy, Labelling2, Labelling3};
use mesh_topo::{FaultSpec, Frame2, Frame3, Mesh2D, Mesh3D, Parallelism};

const FAULT_FRACTION: f64 = 0.20;
const SEED: u64 = 42;
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn mesh2(width: i32) -> Mesh2D {
    let mut mesh = Mesh2D::kary(width);
    let faults = (mesh.node_count() as f64 * FAULT_FRACTION) as usize;
    FaultSpec::uniform(faults, SEED).inject_2d(&mut mesh, &[]);
    mesh
}

fn mesh3(k: i32) -> Mesh3D {
    let mut mesh = Mesh3D::kary(k);
    let faults = (mesh.node_count() as f64 * FAULT_FRACTION) as usize;
    FaultSpec::uniform(faults, SEED).inject_3d(&mut mesh, &[]);
    mesh
}

fn bench_par_2d(c: &mut Criterion) {
    let mut g = c.benchmark_group("par_scaling_2d_20pct");
    for width in [256i32, 512] {
        let mesh = mesh2(width);
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("seq", width), &mesh, |b, m| {
            b.iter(|| {
                Labelling2::compute(m, Frame2::identity(m), BorderPolicy::BorderSafe).unsafe_count()
            })
        });
        for t in THREADS {
            let id = BenchmarkId::new(format!("par{t}"), width);
            g.bench_with_input(id, &mesh, |b, m| {
                b.iter(|| {
                    Labelling2::compute_par(
                        m,
                        Frame2::identity(m),
                        BorderPolicy::BorderSafe,
                        Parallelism::new(t),
                    )
                    .unsafe_count()
                })
            });
        }
    }
    g.finish();
}

fn bench_par_3d(c: &mut Criterion) {
    let mut g = c.benchmark_group("par_scaling_3d_20pct");
    for k in [48i32, 64] {
        let mesh = mesh3(k);
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("seq", k), &mesh, |b, m| {
            b.iter(|| {
                Labelling3::compute(m, Frame3::identity(m), BorderPolicy::BorderSafe).unsafe_count()
            })
        });
        for t in THREADS {
            let id = BenchmarkId::new(format!("par{t}"), k);
            g.bench_with_input(id, &mesh, |b, m| {
                b.iter(|| {
                    Labelling3::compute_par(
                        m,
                        Frame3::identity(m),
                        BorderPolicy::BorderSafe,
                        Parallelism::new(t),
                    )
                    .unsafe_count()
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_par_2d, bench_par_3d);
criterion_main!(benches);
