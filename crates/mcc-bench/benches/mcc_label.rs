//! Old-vs-new MCC construction: the hash-based reference pipeline
//! (coordinate worklist labelling + `HashSet` component BFS, see
//! `fault_model::reference`) against the flat bitset pipeline
//! (raster-sweep labelling + `NodeSet` index BFS) on 32²…512² and
//! 16³…64³ meshes at 20% uniform faults.
//!
//! The `bench_label` binary runs the same cases and snapshots the
//! results to `BENCH_mcc_label.json` at the workspace root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fault_model::components::{Components2, Components3};
use fault_model::reference::{components2_hash, components3_hash, HashLabelling2, HashLabelling3};
use fault_model::{BorderPolicy, Labelling2, Labelling3};
use mesh_topo::{FaultSpec, Frame2, Frame3, Mesh2D, Mesh3D};

const FAULT_FRACTION: f64 = 0.20;
const SEED: u64 = 42;

fn mesh2(width: i32) -> Mesh2D {
    let mut mesh = Mesh2D::kary(width);
    let faults = (mesh.node_count() as f64 * FAULT_FRACTION) as usize;
    FaultSpec::uniform(faults, SEED).inject_2d(&mut mesh, &[]);
    mesh
}

fn mesh3(k: i32) -> Mesh3D {
    let mut mesh = Mesh3D::kary(k);
    let faults = (mesh.node_count() as f64 * FAULT_FRACTION) as usize;
    FaultSpec::uniform(faults, SEED).inject_3d(&mut mesh, &[]);
    mesh
}

fn bench_label_2d(c: &mut Criterion) {
    let mut g = c.benchmark_group("mcc_label_2d_20pct");
    for width in [32i32, 64, 128, 256, 512] {
        let mesh = mesh2(width);
        let samples = if width >= 256 { 3 } else { 10 };
        g.sample_size(samples);
        g.bench_with_input(BenchmarkId::new("flat", width), &mesh, |b, m| {
            b.iter(|| {
                let lab = Labelling2::compute(m, Frame2::identity(m), BorderPolicy::BorderSafe);
                Components2::compute(&lab).len()
            })
        });
        g.bench_with_input(BenchmarkId::new("hash", width), &mesh, |b, m| {
            b.iter(|| {
                let lab = HashLabelling2::compute(m, Frame2::identity(m), BorderPolicy::BorderSafe);
                components2_hash(&lab).len()
            })
        });
    }
    g.finish();
}

fn bench_label_3d(c: &mut Criterion) {
    let mut g = c.benchmark_group("mcc_label_3d_20pct");
    for k in [16i32, 32, 48, 64] {
        let mesh = mesh3(k);
        let samples = if k >= 48 { 3 } else { 10 };
        g.sample_size(samples);
        g.bench_with_input(BenchmarkId::new("flat", k), &mesh, |b, m| {
            b.iter(|| {
                let lab = Labelling3::compute(m, Frame3::identity(m), BorderPolicy::BorderSafe);
                Components3::compute(&lab).len()
            })
        });
        g.bench_with_input(BenchmarkId::new("hash", k), &mesh, |b, m| {
            b.iter(|| {
                let lab = HashLabelling3::compute(m, Frame3::identity(m), BorderPolicy::BorderSafe);
                components3_hash(&lab).len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_label_2d, bench_label_3d);
criterion_main!(benches);
