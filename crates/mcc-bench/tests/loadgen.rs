//! Integration battery for the saturation loadgen: the determinism
//! contract (two runs of the same scenario execute the identical request
//! sequence and failure counts — only wall-clock fields vary), the
//! monotone ramp, the JSON summary's required fields, and the CLI
//! surfaces of the `loadgen` and `tables` binaries.

use std::path::PathBuf;
use std::process::Command;

use mcc_bench::loadgen::{run_load, LoadReport};
use mcc_bench::run_scenario;
use mcc_bench::scenario::{LoadProfile, MeshDims, Scenario};

/// A sub-second ramp: 3 steps × 50 ms over a four-slot mixed 2-D/3-D
/// pool, all three classes in the mix.
fn mixed_scenario() -> Scenario {
    Scenario::load_2d(
        12,
        8,
        7,
        LoadProfile {
            initial_rps: 100,
            increment_rps: 100,
            max_rps: 300,
            step_secs: 0.05,
            mix_routing: 0.5,
            mix_labelling: 0.3,
            mix_churn: 0.2,
            pool: 2,
            alt_dims: Some(MeshDims::D3 { x: 6, y: 6, z: 6 }),
            p99_limit_ms: LoadProfile::DEFAULT_P99_LIMIT_MS,
            fail_limit: LoadProfile::DEFAULT_FAIL_LIMIT,
        },
    )
}

/// The deterministic projection of a report: everything except the
/// wall-clock fields.
fn deterministic_view(report: &LoadReport) -> Vec<(usize, u32, u64, u64, u64, u64, u64)> {
    report
        .steps
        .iter()
        .map(|s| {
            (
                s.step,
                s.offered_rps,
                s.ops,
                s.ops_routing,
                s.ops_labelling,
                s.ops_churn,
                s.failures,
            )
        })
        .collect()
}

#[test]
fn ramp_is_monotone_and_deterministic_across_runs() {
    let sc = mixed_scenario();
    let a = run_load(&sc).expect("mixed load scenario runs");
    let b = run_load(&sc).expect("mixed load scenario runs twice");

    // Monotone ramp with the planned op counts per step.
    assert_eq!(a.steps.len(), 3);
    assert!(a
        .steps
        .windows(2)
        .all(|w| w[0].offered_rps < w[1].offered_rps));
    for (i, s) in a.steps.iter().enumerate() {
        assert_eq!(s.offered_rps, 100 * (i as u32 + 1));
        assert_eq!(s.ops, (s.offered_rps as f64 * 0.05).round() as u64);
        assert_eq!(s.ops_routing + s.ops_labelling + s.ops_churn, s.ops);
        assert!(s.ops_routing > 0 && s.ops_labelling > 0);
        assert_eq!(s.fail_rate, s.failures as f64 / s.ops as f64);
        // Wall-clock fields exist and are sane, whatever their values.
        assert!(s.elapsed_ms > 0.0 && s.achieved_rps > 0.0);
        assert!(s.p50_us <= s.p99_us && s.p99_us <= s.p999_us);
    }
    assert_eq!(a.pool_slots, 4);
    assert_eq!(a.geometries, vec!["12x12".to_string(), "6x6x6".to_string()]);

    // Determinism: identical request sequence and failure counts.
    assert_eq!(deterministic_view(&a), deterministic_view(&b));
}

#[test]
fn json_summary_carries_every_required_field() {
    let report = run_load(&mixed_scenario()).expect("runs");
    let json = report.to_json();
    for key in [
        "\"bench\": \"loadgen\"",
        "\"scenario\"",
        "\"fault_regime\": \"uniform\"",
        "\"seed\": 7",
        "\"threads\"",
        "\"detected_cores\"",
        "\"pool_slots\": 4",
        "\"geometries\": [\"12x12\", \"6x6x6\"]",
        "\"mix\": [0.5, 0.3, 0.2]",
        "\"steps\"",
        "\"step\"",
        "\"offered_rps\"",
        "\"ops\"",
        "\"ops_routing\"",
        "\"ops_labelling\"",
        "\"ops_churn\"",
        "\"failures\"",
        "\"fail_rate\"",
        "\"achieved_rps\"",
        "\"elapsed_ms\"",
        "\"p50_us\"",
        "\"p99_us\"",
        "\"p999_us\"",
        "\"saturated\"",
        "\"saturated_at_rps\"",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
}

#[test]
fn run_scenario_refuses_load_tables() {
    let err = run_scenario(&mixed_scenario()).unwrap_err();
    assert!(err.to_string().contains("loadgen"), "got: {err}");
}

/// Write a scenario to a fresh temp file and return its path.
fn write_scenario(sc: &Scenario, name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mcc-loadgen-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, sc.to_toml()).expect("write scenario");
    path
}

#[test]
fn loadgen_binary_writes_the_summary() {
    let path = write_scenario(&mixed_scenario(), "lg.toml");
    let out = path.with_extension("json");
    let run = Command::new(env!("CARGO_BIN_EXE_loadgen"))
        .args(["--quick", "--out"])
        .arg(&out)
        .arg(&path)
        .output()
        .expect("run loadgen");
    assert!(
        run.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(stdout.contains("p99us"), "got: {stdout}");
    let json = std::fs::read_to_string(&out).expect("summary written");
    assert!(json.contains("\"bench\": \"loadgen\""), "got: {json}");
}

#[test]
fn tables_binary_runs_a_repeated_path_once_and_rejects_load_scenarios() {
    // The same scenario passed twice (second time via a respelled path)
    // must print exactly one table.
    let sc = Scenario::regions_2d(8, &[2], 2);
    let path = write_scenario(&sc, "dedupe.toml");
    let respelled = path.parent().unwrap().join(".").join("dedupe.toml");
    let run = Command::new(env!("CARGO_BIN_EXE_tables"))
        .arg(&path)
        .arg(&path)
        .arg(&respelled)
        .output()
        .expect("run tables");
    assert!(
        run.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert_eq!(
        stdout.matches("== ").count(),
        1,
        "deduped run prints one table: {stdout}"
    );

    // Explicitly passing a load scenario is an error that names loadgen.
    let load_path = write_scenario(&mixed_scenario(), "load.toml");
    let run = Command::new(env!("CARGO_BIN_EXE_tables"))
        .arg(&load_path)
        .output()
        .expect("run tables on load scenario");
    assert!(!run.status.success());
    let stderr = String::from_utf8_lossy(&run.stderr);
    assert!(stderr.contains("loadgen"), "got: {stderr}");
}
