//! Property battery for the fault-regime layer (see DESIGN.md §15).
//!
//! Two contracts:
//!
//! * **Schema identity** — for every regime kind, `to_toml` → `from_toml`
//!   is the identity on scenarios (the typed `[faults.regime]` table
//!   loses nothing), over arbitrary knob values.
//! * **Sampling determinism** — a regime's fault set is a pure function
//!   of `(mesh, count, seed, protected)`; resampling is bit-identical,
//!   and pinned digests for fixed seeds force the CI thread-matrix legs
//!   (`MCC_THREADS=1` vs `=0`) to produce byte-identical populations.

use fault_model::{BorderPolicy, FaultRegime};
use mcc_bench::scenario::Scenario;
use mesh_topo::{Mesh2D, Mesh3D};
use proptest::prelude::*;

const B: BorderPolicy = BorderPolicy::BorderSafe;

/// Build the regime for one drawn knob tuple; callers bound the kind
/// index to include or exclude the (slow) adversarial search. Duty
/// cycles are drawn in hundredths so their decimal rendering survives
/// the TOML float round-trip exactly.
fn regime_from(kind: usize, knob: usize, period: usize, pct: u32) -> FaultRegime {
    match kind {
        0 => FaultRegime::Uniform,
        1 => FaultRegime::Clustered { clusters: knob },
        2 => FaultRegime::CorrelatedFront {
            fronts: (knob % 5) + 1,
        },
        3 => FaultRegime::SweepingPlane { axis: knob % 2 },
        4 => FaultRegime::TransientSchedule {
            period,
            duty: f64::from(pct) / 100.0,
        },
        _ => FaultRegime::AdversarialBoundary { restarts: knob },
    }
}

/// Arbitrary regime with knobs inside their validated ranges.
fn regime_strategy() -> impl Strategy<Value = FaultRegime> {
    (0usize..6, 1usize..8, 2usize..16, 1u32..100)
        .prop_map(|(kind, knob, period, pct)| regime_from(kind, knob, period, pct))
}

/// Like [`regime_strategy`] but without the adversarial search, whose
/// annealing loop is too slow for a per-case property run (its
/// determinism is pinned by `fault-model/tests/regime_adversarial.rs`).
fn sampling_regime_strategy() -> impl Strategy<Value = FaultRegime> {
    (0usize..5, 1usize..8, 2usize..16, 1u32..100)
        .prop_map(|(kind, knob, period, pct)| regime_from(kind, knob, period, pct))
}

/// FNV-1a over the fault list in mesh iteration order: any change to
/// membership *or* placement changes the digest.
fn digest_2d(mesh: &Mesh2D) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for c in mesh.faults() {
        for v in [c.x, c.y] {
            h ^= v as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

fn digest_3d(mesh: &Mesh3D) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for c in mesh.faults() {
        for v in [c.x, c.y, c.z] {
            h ^= v as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

proptest! {
    /// `to_toml` → `from_toml` is the identity for every regime kind.
    /// A 2-D routing scenario accepts all of them (the adversarial
    /// regime's table/pairs constraints included), so the round-trip
    /// exercises both the legacy `pattern` keys and `[faults.regime]`.
    #[test]
    fn scenario_toml_round_trips_every_regime(regime in regime_strategy()) {
        let mut sc = Scenario::routing_2d(16, &[4], 4);
        sc.regime = regime;
        sc.validate().expect("strategy stays inside validated ranges");
        let back = Scenario::from_toml(&sc.to_toml())
            .expect("rendered scenario parses");
        prop_assert_eq!(sc, back);
    }

    /// Regime sampling is a pure function of its inputs: resampling on a
    /// fresh mesh reproduces the fault set bit-for-bit, in both
    /// dimensions, and never exceeds the requested count.
    #[test]
    fn sampling_is_deterministic(
        regime in sampling_regime_strategy(),
        seed in any::<u64>(),
        count in 1usize..24,
    ) {
        let mut a = Mesh2D::new(12, 12);
        let mut b = Mesh2D::new(12, 12);
        let na = regime.inject_2d(&mut a, count, seed, &[], B);
        let nb = regime.inject_2d(&mut b, count, seed, &[], B);
        prop_assert_eq!(na, nb);
        prop_assert_eq!(a.faults(), b.faults());
        prop_assert!(a.faults().len() <= count);

        let mut a = Mesh3D::new(6, 6, 6);
        let mut b = Mesh3D::new(6, 6, 6);
        let na = regime.inject_3d(&mut a, count, seed, &[], B);
        let nb = regime.inject_3d(&mut b, count, seed, &[], B);
        prop_assert_eq!(na, nb);
        prop_assert_eq!(a.faults(), b.faults());
        prop_assert!(a.faults().len() <= count);
    }
}

/// Pinned digests: the exact fault populations for fixed seeds. Both CI
/// thread-matrix legs run this test, so a sampler whose output depended
/// on the thread budget (or drifted across a refactor) fails here by
/// regime name rather than as an opaque golden diff.
#[test]
fn fixed_seed_fault_sets_match_pinned_digests() {
    let regimes = [
        ("uniform", FaultRegime::Uniform),
        ("clustered", FaultRegime::Clustered { clusters: 3 }),
        ("front", FaultRegime::CorrelatedFront { fronts: 3 }),
        ("plane", FaultRegime::SweepingPlane { axis: 1 }),
        (
            "transient",
            FaultRegime::TransientSchedule {
                period: 4,
                duty: 0.5,
            },
        ),
    ];
    let expected_2d: [u64; 5] = [
        0x68ad_e389_de92_eb17,
        0xe232_3c47_e733_22c0,
        0x881c_c2c1_d7a1_7b16,
        0xebcf_2eaf_5af0_1a05,
        0xb727_b457_af06_f7de,
    ];
    let expected_3d: [u64; 5] = [
        0xb9c4_210a_95f9_8b7f,
        0x3c8c_ad6c_f71f_c1bd,
        0xe01e_beed_1a7a_ac00,
        0x0d8f_f70a_946b_055d,
        0x9adc_83b9_d5c5_c03c,
    ];
    for (i, (name, regime)) in regimes.iter().enumerate() {
        let mut mesh = Mesh2D::new(16, 16);
        regime.inject_2d(&mut mesh, 16, 42, &[], B);
        assert_eq!(
            digest_2d(&mesh),
            expected_2d[i],
            "2-D {name} fault set drifted (digest {:#x})",
            digest_2d(&mesh)
        );
        let mut mesh = Mesh3D::kary(8);
        regime.inject_3d(&mut mesh, 24, 42, &[], B);
        assert_eq!(
            digest_3d(&mesh),
            expected_3d[i],
            "3-D {name} fault set drifted (digest {:#x})",
            digest_3d(&mesh)
        );
    }
}
