//! Integration tests for the declarative scenario layer: TOML round-trips,
//! the shipped scenario files, and deterministic table generation.

use mcc_bench::runner::{run_scenario, TableRows};
use mcc_bench::scenario::{MeshDims, RouterChoice, Scenario, TableKind};

/// Every scenario file shipped under `scenarios/` must parse, validate,
/// and survive a serialize → parse round-trip unchanged.
#[test]
fn shipped_scenarios_parse_and_round_trip() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios");
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("scenarios/ exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "toml") {
            continue;
        }
        let scenario = Scenario::load(&path)
            .unwrap_or_else(|e| panic!("{} must be valid: {e}", path.display()));
        let back = Scenario::from_toml(&scenario.to_toml())
            .unwrap_or_else(|e| panic!("{} must round-trip: {e}", path.display()));
        assert_eq!(
            scenario,
            back,
            "{} round-trip changed the scenario",
            path.display()
        );
        seen += 1;
    }
    assert!(
        seen >= 10,
        "expected the E1–E8 scenario files, found {seen}"
    );
}

/// The two scenario files named by the experiment map must describe what
/// EXPERIMENTS.md says they describe.
#[test]
fn named_scenarios_have_expected_shape() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios");
    let e1 = Scenario::load(format!("{root}/e1_regions_2d.toml")).unwrap();
    assert_eq!(e1.table, TableKind::Regions);
    assert_eq!(
        e1.dims,
        MeshDims::D2 {
            width: 32,
            height: 32
        }
    );

    let e3 = Scenario::load(format!("{root}/e3_routing_3d.toml")).unwrap();
    assert_eq!(e3.table, TableKind::Routing);
    assert_eq!(
        e3.dims,
        MeshDims::D3 {
            x: 16,
            y: 16,
            z: 16
        }
    );
    assert_eq!(e3.router, RouterChoice::All);
    assert_eq!(e3.min_dist_frac, 1.0);

    // The protocol-layer scenarios added with the flat-engine refactor.
    let e6 = Scenario::load(format!("{root}/e6_overhead_3d.toml")).unwrap();
    assert_eq!(e6.table, TableKind::Overhead);
    assert_eq!(
        e6.dims,
        MeshDims::D3 {
            x: 16,
            y: 16,
            z: 16
        }
    );

    let e7 = Scenario::load(format!("{root}/e7_labelling_2d.toml")).unwrap();
    assert_eq!(e7.table, TableKind::Labelling);
    assert_eq!(
        e7.dims,
        MeshDims::D2 {
            width: 32,
            height: 32
        }
    );

    // The incremental-maintenance churn scenario (E12).
    let e12 = Scenario::load(format!("{root}/e12_churn_2d.toml")).unwrap();
    assert_eq!(e12.table, TableKind::Churn);
    assert_eq!(
        e12.dims,
        MeshDims::D2 {
            width: 16,
            height: 16
        }
    );
    assert_eq!(e12.churn_rounds, 12);
    assert_eq!(e12.churn_rate, 0.25);
}

/// A small labelling scenario runs the protocol layer through the runner
/// deterministically, and its rows carry the convergence metrics.
#[test]
fn labelling_scenario_runs_deterministically() {
    let text = r#"
        name = "smoke labelling"
        table = "labelling"

        [mesh]
        dims = [12, 12]

        [faults]
        counts = [5, 20]

        [run]
        seeds = [0, 8]
    "#;
    let scenario = Scenario::from_toml(text).unwrap();
    let a = run_scenario(&scenario).unwrap();
    let b = run_scenario(&scenario).unwrap();
    let rows = match &a.rows {
        TableRows::Labelling(rows) => rows,
        _ => panic!("labelling scenario must yield labelling rows"),
    };
    assert_eq!(rows.len(), 2);
    for r in rows {
        assert_eq!(r.converged, 1.0, "labelling must reach quiescence");
        // Round 0 alone sends one announcement per directed edge.
        assert!(r.messages >= (2 * (2 * 12 * 11)) as f64);
        assert!(r.rounds >= 2.0);
        assert!(r.max_inflight <= r.messages);
    }
    assert_eq!(a.render(), b.render());
    assert!(a.render().contains("max-inflight"));
}

/// The large-mesh E9 scenario (128×128, E4 fault ramp, 48 pairs batched
/// per fault configuration) runs through the prepared-mesh pipeline in
/// quick mode, deterministically, and its rows respect the model
/// orderings. Without pair batching this sweep would rebuild the
/// 16k-node models once per pair and be unusable as a smoke test.
#[test]
fn e9_large_scenario_quick_runs_batched() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios");
    let e9 = Scenario::load(format!("{root}/e9_routing_2d_large.toml")).unwrap();
    assert_eq!(e9.table, TableKind::Routing);
    assert_eq!(
        e9.dims,
        MeshDims::D2 {
            width: 128,
            height: 128
        }
    );
    assert_eq!(e9.pairs_per_seed, 48);
    let quick = e9.quick();
    let a = run_scenario(&quick).unwrap();
    let b = run_scenario(&quick).unwrap();
    let rows = match &a.rows {
        TableRows::Routing(rows) => rows,
        _ => panic!("routing scenario must yield routing rows"),
    };
    assert_eq!(rows.len(), e9.fault_counts.len());
    for r in rows {
        // The MCC condition is exact and the block model conservative on
        // every one of the seeds × pairs trials behind this row.
        assert!((r.mcc - r.oracle).abs() < 1e-12, "row {}", r.faults);
        assert!(r.rfb <= r.mcc + 1e-12, "row {}", r.faults);
        assert!(r.greedy <= r.oracle + 1e-12, "row {}", r.faults);
    }
    assert_eq!(a.render(), b.render(), "batched rows must be deterministic");
}

/// The torus scenarios run through the batched prepared-mesh path in
/// quick mode, deterministically, with the model orderings intact (the
/// MCC condition stays exact on tori; the block model stays
/// conservative).
#[test]
fn torus_scenarios_quick_run_batched() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios");
    for (file, expect_2d) in [("e10_torus_2d.toml", true), ("e11_torus_3d.toml", false)] {
        let sc = Scenario::load(format!("{root}/{file}")).unwrap();
        assert_eq!(sc.table, TableKind::Routing, "{file}");
        assert!(sc.wrap, "{file} must be a torus scenario");
        assert!(sc.pairs_per_seed > 1, "{file} must batch pairs");
        match (sc.dims, expect_2d) {
            (MeshDims::D2 { .. }, true) | (MeshDims::D3 { .. }, false) => {}
            other => panic!("{file}: unexpected dims {other:?}"),
        }
        let quick = sc.quick();
        let a = run_scenario(&quick).unwrap();
        let b = run_scenario(&quick).unwrap();
        let rows = match &a.rows {
            TableRows::Routing(rows) => rows,
            _ => panic!("routing scenario must yield routing rows"),
        };
        assert_eq!(rows.len(), sc.fault_counts.len(), "{file}");
        for r in rows {
            assert!((r.mcc - r.oracle).abs() < 1e-12, "{file} row {}", r.faults);
            assert!(r.rfb <= r.mcc + 1e-12, "{file} row {}", r.faults);
            assert!(r.greedy <= r.oracle + 1e-12, "{file} row {}", r.faults);
        }
        assert_eq!(a.render(), b.render(), "{file} rows must be deterministic");
    }
}

/// The wrap knob parses, round-trips, and rejects the combinations the
/// runner cannot execute.
#[test]
fn wrap_knob_parses_and_validates() {
    let torus = "name = \"t\"\ntable = \"routing\"\n[mesh]\ndims = [8, 8]\nwrap = true\n\
                 [faults]\ncounts = [4]\n[run]\nseeds = [0, 2]\n";
    let sc = Scenario::from_toml(torus).unwrap();
    assert!(sc.wrap);
    let back = Scenario::from_toml(&sc.to_toml()).unwrap();
    assert_eq!(sc, back, "wrap must round-trip");

    // Torus extents below 3 are rejected.
    let tiny = torus.replace("dims = [8, 8]", "dims = [2, 8]");
    let err = Scenario::from_toml(&tiny).unwrap_err();
    assert!(err.to_string().contains(">= 3"), "got: {err}");
    // Overhead tables refuse wrap at load time, like every other
    // unexecutable knob combination.
    let overhead = torus
        .replace("table = \"routing\"", "table = \"overhead\"")
        .replace("dims = [8, 8]", "dims = [8, 8, 8]");
    let err = Scenario::from_toml(&overhead).unwrap_err();
    assert!(
        err.to_string().contains("identification-walk"),
        "got: {err}"
    );
    // A separation requirement beyond the torus diameter can never be
    // satisfied: reject instead of spinning the pair sampler forever.
    let undark = torus.replace("dims = [8, 8]", "dims = [32, 4]");
    let far = format!("{undark}min_dist_frac = 1.0\n");
    let err = Scenario::from_toml(&far).unwrap_err();
    assert!(err.to_string().contains("diameter"), "got: {err}");
}

/// Malformed scenario TOML surfaces a typed parse error carrying the
/// offending line, through `Scenario::from_toml` and `Scenario::load`.
#[test]
fn malformed_toml_reports_the_offending_line() {
    use mcc_bench::scenario::ScenarioError;
    let text = "name = \"x\"\ntable = \"routing\"\n\n[mesh\ndims = [8, 8]\n";
    let err = Scenario::from_toml(text).unwrap_err();
    assert_eq!(err.line(), Some(4), "got: {err:?}");
    assert!(matches!(err, ScenarioError::Parse(_)));
    assert!(
        err.to_string().contains("line 4"),
        "message must carry the line: {err}"
    );

    // Through a file too (what the tables binary prints before exiting
    // nonzero).
    let dir = std::env::temp_dir().join("mcc_bench_scenario_err_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.toml");
    std::fs::write(&path, "name = \"x\"\nbroken line\n").unwrap();
    let err = Scenario::load(&path).unwrap_err();
    assert_eq!(err.line(), Some(2), "got: {err:?}");

    // Knob violations keep the Invalid flavor (no line).
    let err = Scenario::from_toml(
        "name = \"x\"\ntable = \"routing\"\n[mesh]\ndims = [8, 8]\n\
         [faults]\ncounts = [63]\n[run]\nseeds = [0, 2]\n",
    )
    .unwrap_err();
    assert!(matches!(err, ScenarioError::Invalid(_)));
    assert_eq!(err.line(), None);
    assert!(err.to_string().contains("fault rate"), "got: {err}");
}

/// Knob validation also guards programmatically assembled scenarios at
/// run time (the public-fields path the TOML layer never sees).
#[test]
fn runner_revalidates_programmatic_scenarios() {
    let mut sc = Scenario::routing_2d(10, &[4], 4);
    sc.pairs_per_seed = 0;
    let err = run_scenario(&sc).unwrap_err();
    assert!(err.to_string().contains("pairs_per_seed"), "got: {err}");

    let mut sc = Scenario::routing_2d(10, &[4], 4);
    sc.min_dist_frac = 1.5;
    let err = run_scenario(&sc).unwrap_err();
    assert!(err.to_string().contains("min_dist_frac"), "got: {err}");

    let mut sc = Scenario::routing_2d(10, &[4], 4);
    sc.dims = MeshDims::D2 {
        width: 0,
        height: 10,
    };
    let err = run_scenario(&sc).unwrap_err();
    assert!(err.to_string().contains("2..=4096"), "got: {err}");

    let mut sc = Scenario::routing_2d(10, &[4], 4);
    sc.seed_end = sc.seed_start;
    let err = run_scenario(&sc).unwrap_err();
    assert!(err.to_string().contains("seeds"), "got: {err}");
}

/// A tiny 8×8 scenario produces bit-identical table rows for a fixed seed
/// range, run after run — the determinism contract of the runner.
#[test]
fn tiny_scenario_is_deterministic() {
    let text = r#"
        name = "smoke 8x8"
        table = "routing"

        [mesh]
        dims = [8, 8]

        [faults]
        counts = [4, 8]
        pattern = "uniform"
        border = "safe"

        [run]
        seeds = [0, 16]
        router = "all"
        min_dist_frac = 0.5
    "#;
    let scenario = Scenario::from_toml(text).unwrap();
    let a = run_scenario(&scenario).unwrap();
    let b = run_scenario(&scenario).unwrap();
    let (ra, rb) = match (&a.rows, &b.rows) {
        (TableRows::Routing(ra), TableRows::Routing(rb)) => (ra, rb),
        _ => panic!("routing scenario must yield routing rows"),
    };
    assert_eq!(ra.len(), 2);
    for (x, y) in ra.iter().zip(rb.iter()) {
        assert_eq!(x.faults, y.faults);
        assert_eq!(
            x.oracle.to_bits(),
            y.oracle.to_bits(),
            "oracle column must be identical"
        );
        assert_eq!(x.mcc.to_bits(), y.mcc.to_bits());
        assert_eq!(x.rfb.to_bits(), y.rfb.to_bits());
        assert_eq!(x.greedy.to_bits(), y.greedy.to_bits());
        assert_eq!(x.mcc_adaptivity.to_bits(), y.mcc_adaptivity.to_bits());
        assert_eq!(x.detection_cost.to_bits(), y.detection_cost.to_bits());
    }
    // The rendered table is likewise byte-identical.
    assert_eq!(a.render(), b.render());
    // And the MCC condition stays exact on the sampled trials.
    for r in ra {
        assert!((r.mcc - r.oracle).abs() < 1e-12);
    }
}

/// Determinism also holds for region tables on a 3-D mesh, and rows track
/// the requested fault ramp.
#[test]
fn region_rows_follow_the_ramp() {
    let text = r#"
        name = "smoke regions"
        table = "regions"

        [mesh]
        dims = [6, 6, 6]

        [faults]
        counts = [2, 6, 12]
        pattern = "clustered"
        clusters = 2
        border = "safe"

        [run]
        seeds = [3, 11]
    "#;
    let scenario = Scenario::from_toml(text).unwrap();
    let a = run_scenario(&scenario).unwrap();
    let b = run_scenario(&scenario).unwrap();
    let rows = match &a.rows {
        TableRows::Regions(rows) => rows,
        _ => panic!("regions scenario must yield region rows"),
    };
    assert_eq!(
        rows.iter().map(|r| r.faults).collect::<Vec<_>>(),
        vec![2, 6, 12]
    );
    for r in rows {
        assert!(
            r.mcc <= r.rfb + 1e-12,
            "MCC must sacrifice no more than RFB"
        );
    }
    assert_eq!(a.render(), b.render());
}
