//! Golden-snapshot regression test for the routing-table determinism
//! contract.
//!
//! The rendered table of `e4_routing_2d.toml` in `--quick` mode is
//! checked in under `tests/golden/`; any change to trial sampling, the
//! prepared-mesh pipeline, model semantics or the renderer that perturbs
//! a single character of a row shows up as a diff here (and in the CI
//! step that runs the actual `tables` binary against the same file).
//! Regenerate — only after convincing yourself the change is intended —
//! with:
//!
//! ```text
//! cargo run --release -p mcc-bench --bin tables -- --quick \
//!     scenarios/e4_routing_2d.toml > crates/mcc-bench/tests/golden/e4_routing_2d_quick.txt
//! ```

use mcc_bench::runner::run_scenario;
use mcc_bench::scenario::Scenario;
use mcc_bench::service_load::run_service_load;

fn assert_quick_matches_golden(scenario_file: &str, golden_file: &str) {
    let root = env!("CARGO_MANIFEST_DIR");
    let scenario = Scenario::load(format!("{root}/../../scenarios/{scenario_file}"))
        .unwrap_or_else(|e| panic!("{scenario_file} parses: {e}"))
        .quick();
    let report = run_scenario(&scenario).unwrap_or_else(|e| panic!("{scenario_file} runs: {e}"));
    // The `tables` binary prints the rendered report with `println!`,
    // which appends one newline beyond the render itself.
    let printed = format!("{}\n", report.render());
    let golden = std::fs::read_to_string(format!("{root}/tests/golden/{golden_file}"))
        .expect("golden snapshot exists");
    assert_eq!(
        printed, golden,
        "{scenario_file} --quick table drifted from {golden_file}; \
         routing-table determinism is part of the prepared-pipeline contract"
    );
}

#[test]
fn e4_quick_table_matches_golden_snapshot() {
    assert_quick_matches_golden("e4_routing_2d.toml", "e4_routing_2d_quick.txt");
}

#[test]
fn e10_torus_quick_table_matches_golden_snapshot() {
    assert_quick_matches_golden("e10_torus_2d.toml", "e10_torus_2d_quick.txt");
}

#[test]
fn e11_torus_quick_table_matches_golden_snapshot() {
    assert_quick_matches_golden("e11_torus_3d.toml", "e11_torus_3d_quick.txt");
}

#[test]
fn e15_service_quick_ramp_matches_golden_snapshot() {
    // Service ramps run through the resident mesh-service (journaled
    // shards behind virtual-time admission queues), not the row-table
    // runner, so this golden pins the whole chain: plan determinism,
    // admission verdicts, journaled churn generations and the
    // deterministic-only renderer. Regenerate with:
    //
    //   cargo run --release -p mcc-bench --bin loadgen -- --quick \
    //       scenarios/e15_service.toml
    //
    // and copy the table (everything before the `wrote ...` line).
    let root = env!("CARGO_MANIFEST_DIR");
    let scenario = Scenario::load(format!("{root}/../../scenarios/e15_service.toml"))
        .unwrap_or_else(|e| panic!("e15_service.toml parses: {e}"))
        .quick();
    let report =
        run_service_load(&scenario).unwrap_or_else(|e| panic!("e15_service.toml runs: {e}"));
    let printed = format!("{}\n", report.render());
    let golden = std::fs::read_to_string(format!("{root}/tests/golden/e15_service_quick.txt"))
        .expect("golden snapshot exists");
    assert_eq!(
        printed, golden,
        "e15_service.toml --quick ramp drifted from e15_service_quick.txt; \
         the admit/shed sequence is part of the admission determinism contract"
    );
}

#[test]
fn e16_front_quick_table_matches_golden_snapshot() {
    // Pins the correlated-front regime end to end: epicenter seeding,
    // the bounded flood growth, and the resulting routing table.
    assert_quick_matches_golden("e16_front_2d.toml", "e16_front_2d_quick.txt");
}

#[test]
fn e17_plane_quick_table_matches_golden_snapshot() {
    // Pins the sweeping-plane regime's slab order (axis + seed-drawn
    // direction) through the 3-D routing path.
    assert_quick_matches_golden("e17_plane_3d.toml", "e17_plane_3d_quick.txt");
}

#[test]
fn e18_transient_quick_table_matches_golden_snapshot() {
    // Pins the transient regime's round-0 active-set sampling (site
    // draw + per-site phases) through the routing path.
    assert_quick_matches_golden("e18_transient_2d.toml", "e18_transient_2d_quick.txt");
}

#[test]
fn e18_transient_churn_quick_table_matches_golden_snapshot() {
    // The churn twin drives the same schedules through the incremental
    // models; like E12 the runner refuses to aggregate unless every
    // per-round equivalence check against recomputation passed, so this
    // golden certifies Schedule::step deltas are consistent histories.
    assert_quick_matches_golden(
        "e18_transient_churn_2d.toml",
        "e18_transient_churn_2d_quick.txt",
    );
}

#[test]
fn e19_adversarial_quick_table_matches_golden_snapshot() {
    // Pins the adversarial boundary search (annealed restarts + greedy
    // 1-minimal pruning) and the endpoint-safety collapse it charts:
    // the golden's `safe-ep` column is far below its `oracle` column.
    assert_quick_matches_golden("e19_adversarial_2d.toml", "e19_adversarial_2d_quick.txt");
}

#[test]
fn e12_churn_quick_table_matches_golden_snapshot() {
    // Beyond renderer determinism this pins the incremental-maintenance
    // path end-to-end: the runner refuses to produce churn rows at all
    // unless every per-round equivalence check against from-scratch
    // recomputation passed, so a drift here means the repair pipeline
    // (or its RNG consumption) changed.
    assert_quick_matches_golden("e12_churn_2d.toml", "e12_churn_2d_quick.txt");
}
