//! Golden-snapshot regression test for the routing-table determinism
//! contract.
//!
//! The rendered table of `e4_routing_2d.toml` in `--quick` mode is
//! checked in under `tests/golden/`; any change to trial sampling, the
//! prepared-mesh pipeline, model semantics or the renderer that perturbs
//! a single character of a row shows up as a diff here (and in the CI
//! step that runs the actual `tables` binary against the same file).
//! Regenerate — only after convincing yourself the change is intended —
//! with:
//!
//! ```text
//! cargo run --release -p mcc-bench --bin tables -- --quick \
//!     scenarios/e4_routing_2d.toml > crates/mcc-bench/tests/golden/e4_routing_2d_quick.txt
//! ```

use mcc_bench::runner::run_scenario;
use mcc_bench::scenario::Scenario;

#[test]
fn e4_quick_table_matches_golden_snapshot() {
    let root = env!("CARGO_MANIFEST_DIR");
    let scenario = Scenario::load(format!("{root}/../../scenarios/e4_routing_2d.toml"))
        .expect("e4 scenario parses")
        .quick();
    let report = run_scenario(&scenario).expect("e4 scenario runs");
    // The `tables` binary prints the rendered report with `println!`,
    // which appends one newline beyond the render itself.
    let printed = format!("{}\n", report.render());
    let golden = std::fs::read_to_string(format!("{root}/tests/golden/e4_routing_2d_quick.txt"))
        .expect("golden snapshot exists");
    assert_eq!(
        printed, golden,
        "e4 --quick table drifted from the checked-in golden snapshot; \
         routing-table determinism is part of the prepared-pipeline contract"
    );
}
