//! Integration battery for the service saturation driver: the overload
//! smoke (typed shed errors, a deterministic admit/shed sequence for a
//! fixed profile+seed, accepted-op p99 under the scenario limit), the
//! JSON summary's required fields, and the CLI surfaces — including the
//! snapshot-write failure path that must name the offending file.

use std::path::PathBuf;
use std::process::Command;

use mcc_bench::scenario::{LoadProfile, MeshDims, Scenario, ServiceProfile};
use mcc_bench::service_load::{run_service_load, ServiceLoadReport};

/// A sub-second service ramp over a mixed 2-D/3-D shard pool, costed so
/// the top step is far beyond the shards' virtual service capacity.
fn service_scenario() -> Scenario {
    Scenario::service_2d(
        12,
        8,
        7,
        LoadProfile {
            initial_rps: 100,
            increment_rps: 100,
            max_rps: 300,
            step_secs: 0.05,
            mix_routing: 0.5,
            mix_labelling: 0.3,
            mix_churn: 0.2,
            pool: 2,
            alt_dims: Some(MeshDims::D3 { x: 6, y: 6, z: 6 }),
            p99_limit_ms: LoadProfile::DEFAULT_P99_LIMIT_MS,
            // Let the whole ramp run: this battery inspects the full shed
            // curve rather than stopping at first saturation.
            fail_limit: 0.95,
        },
        ServiceProfile {
            queue_cap: 8,
            deadline_ms: 4.0,
            cost_us: [12_000, 6_000, 24_000],
            snapshot_every: 4,
        },
    )
}

/// One step of [`deterministic_view`]: (step, rps, ops, admitted,
/// shed_overloaded, shed_deadline, rejected, undelivered, saturated).
type StepView = (usize, u32, u64, u64, u64, u64, u64, u64, bool);

/// The deterministic projection of a service report: everything except
/// the wall-clock fields.
fn deterministic_view(report: &ServiceLoadReport) -> Vec<StepView> {
    report
        .steps
        .iter()
        .map(|s| {
            (
                s.step,
                s.offered_rps,
                s.ops,
                s.admitted,
                s.shed_overloaded,
                s.shed_deadline,
                s.rejected,
                s.undelivered,
                s.saturated,
            )
        })
        .collect()
}

#[test]
fn overload_smoke_sheds_deterministically_with_p99_under_the_limit() {
    let sc = service_scenario();
    let a = run_service_load(&sc).expect("service scenario runs");
    let b = run_service_load(&sc).expect("service scenario runs twice");

    assert_eq!(a.steps.len(), 3);
    assert_eq!(a.shards, 4);
    assert_eq!(a.geometries, vec!["12x12".to_string(), "6x6x6".to_string()]);
    for s in &a.steps {
        // Every planned op is accounted for by exactly one outcome.
        assert_eq!(
            s.admitted + s.shed_overloaded + s.shed_deadline + s.rejected,
            s.ops
        );
        assert_eq!(
            s.shed_rate,
            (s.shed_overloaded + s.shed_deadline) as f64 / s.ops as f64
        );
        // Accepted-op latency stays under the scenario's p99 limit: the
        // admission layer sheds the excess instead of queueing it.
        assert!(
            (s.p99_us as f64) / 1_000.0 <= sc.load.as_ref().unwrap().p99_limit_ms,
            "step {} p99 {}µs breaches the limit",
            s.step,
            s.p99_us
        );
    }
    // Past saturation the service sheds (with typed errors — anything
    // else panics inside the driver) and the curve rises with the rate.
    let shed: Vec<u64> = a
        .steps
        .iter()
        .map(|s| s.shed_overloaded + s.shed_deadline)
        .collect();
    assert!(*shed.last().unwrap() > 0, "top step must shed: {shed:?}");
    assert!(shed.last() >= shed.first(), "shed curve fell: {shed:?}");

    // A healthy run never trips the supervisor, and every shard ends on
    // its journaled generation: the bootstrap batch plus admitted churns.
    assert_eq!(a.recoveries, 0);
    assert_eq!(a.final_gens.len(), 4);
    assert!(a.final_gens.iter().all(|&g| g >= 1));

    // Determinism: identical admit/shed sequence and final generations.
    assert_eq!(deterministic_view(&a), deterministic_view(&b));
    assert_eq!(a.final_gens, b.final_gens);
    assert_eq!(a.render(), b.render(), "rendered table must be byte-equal");
}

#[test]
fn json_summary_carries_every_required_field() {
    let report = run_service_load(&service_scenario()).expect("runs");
    let json = report.to_json();
    for key in [
        "\"bench\": \"service\"",
        "\"scenario\"",
        "\"fault_regime\": \"uniform\"",
        "\"seed\": 7",
        "\"threads\"",
        "\"detected_cores\"",
        "\"shards\": 4",
        "\"geometries\": [\"12x12\", \"6x6x6\"]",
        "\"queue_cap\": 8",
        "\"deadline_ms\"",
        "\"cost_us\": [12000, 6000, 24000]",
        "\"snapshot_every\": 4",
        "\"steps\"",
        "\"admitted\"",
        "\"shed_overloaded\"",
        "\"shed_deadline\"",
        "\"rejected\"",
        "\"undelivered\"",
        "\"shed_rate\"",
        "\"achieved_rps\"",
        "\"p99_us\"",
        "\"saturated_at_rps\"",
        "\"final_gens\"",
        "\"recoveries\"",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
}

#[test]
fn run_service_load_refuses_other_tables() {
    let err = run_service_load(&Scenario::regions_2d(8, &[2], 2)).unwrap_err();
    assert!(err.to_string().contains("service"), "got: {err}");
}

/// Write a scenario to a fresh temp file and return its path.
fn write_scenario(sc: &Scenario, name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mcc-service-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, sc.to_toml()).expect("write scenario");
    path
}

#[test]
fn loadgen_binary_routes_service_scenarios_to_the_service_driver() {
    let path = write_scenario(&service_scenario(), "svc.toml");
    let out = path.with_extension("json");
    let run = Command::new(env!("CARGO_BIN_EXE_loadgen"))
        .args(["--quick", "--out"])
        .arg(&out)
        .arg(&path)
        .output()
        .expect("run loadgen");
    assert!(
        run.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(stdout.contains("shed%"), "got: {stdout}");
    let json = std::fs::read_to_string(&out).expect("summary written");
    assert!(json.contains("\"bench\": \"service\""), "got: {json}");
}

#[test]
fn loadgen_binary_names_the_unwritable_summary_path() {
    let path = write_scenario(&service_scenario(), "unwritable.toml");
    let run = Command::new(env!("CARGO_BIN_EXE_loadgen"))
        .args(["--quick", "--out", "/nonexistent-dir-zzz/out.json"])
        .arg(&path)
        .output()
        .expect("run loadgen");
    assert!(!run.status.success(), "must exit nonzero on write failure");
    let stderr = String::from_utf8_lossy(&run.stderr);
    assert!(
        stderr.contains("cannot write /nonexistent-dir-zzz/out.json"),
        "error must name the path: {stderr}"
    );
}

#[test]
fn tables_binary_rejects_explicit_service_scenarios() {
    let path = write_scenario(&service_scenario(), "svc-tables.toml");
    let run = Command::new(env!("CARGO_BIN_EXE_tables"))
        .arg(&path)
        .output()
        .expect("run tables on service scenario");
    assert!(!run.status.success());
    let stderr = String::from_utf8_lossy(&run.stderr);
    assert!(stderr.contains("loadgen"), "got: {stderr}");
    assert!(stderr.contains("service"), "got: {stderr}");
}
