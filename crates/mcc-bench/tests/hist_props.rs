//! Property battery for the log-bucketed latency histogram.
//!
//! Three invariants the loadgen harness leans on (see
//! `mcc_bench::hist` and DESIGN.md §13), checked over arbitrary `u64`
//! sample sets spanning the full value range:
//!
//! * percentiles are monotone in the quantile (p50 ≤ p99 ≤ p999) and
//!   bounded by the recorded extremes,
//! * every sample's bucket brackets it, with relative bucket width
//!   bounded by `1 / 2^SUB_BITS`,
//! * recording through any sharding and merging is indistinguishable
//!   from single-histogram recording (what the per-worker histograms in
//!   the loadgen rely on).

use mcc_bench::hist::{LatencyHist, SUB_BITS};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #[test]
    fn percentiles_are_monotone_and_bounded(samples in vec(any::<u64>(), 1..200)) {
        let mut h = LatencyHist::new();
        for &s in &samples {
            h.record(s);
        }
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        let p999 = h.percentile(0.999);
        prop_assert!(p50 <= p99);
        prop_assert!(p99 <= p999);
        prop_assert!(p999 <= h.max());
        // The p50 report is some occupied bucket's upper bound, which is
        // at least the sample that occupies it, so never below the min.
        prop_assert!(h.min() <= p50);
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    #[test]
    fn bucket_bounds_bracket_every_sample(samples in vec(any::<u64>(), 1..200)) {
        for &s in &samples {
            let index = LatencyHist::bucket_index(s);
            let (lo, hi) = LatencyHist::bucket_bounds(index);
            prop_assert!(lo <= s, "bucket {} lower bound {} above sample {}", index, lo, s);
            prop_assert!(s <= hi, "bucket {} upper bound {} below sample {}", index, hi, s);
            // Relative quantization error stays under 1/2^SUB_BITS.
            if s > 0 {
                let width = (hi - lo) as f64;
                prop_assert!(width / s as f64 <= 1.0 / (1u64 << SUB_BITS) as f64 + 1e-12);
            }
        }
    }

    #[test]
    fn merge_of_shards_equals_single_recording(
        samples in vec(any::<u64>(), 0..300),
        shards in 1usize..8,
    ) {
        let mut whole = LatencyHist::new();
        let mut parts = vec![LatencyHist::new(); shards];
        for (i, &s) in samples.iter().enumerate() {
            whole.record(s);
            parts[i % shards].record(s);
        }
        let mut merged = LatencyHist::new();
        for part in &parts {
            merged.merge(part);
        }
        prop_assert_eq!(&merged, &whole);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            prop_assert_eq!(merged.percentile(q), whole.percentile(q));
        }
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
        prop_assert_eq!(merged.mean(), whole.mean());
    }
}
