//! The one durable operation: a resolved churn batch.
//!
//! Only state-mutating requests reach the WAL, and after admission and
//! validation every one of them has been *resolved* to explicit coordinate
//! lists (seed-driven random churn is sampled by the shard before
//! journaling), so replay is a pure function of the journal — the
//! determinism argument of the recovery path rests on this.

use mesh_topo::coord::{c2, c3, C2, C3};

use crate::wire::{put_i32, put_u32, Reader};

/// Upper bound on coordinates per list — a structural sanity check so a
/// corrupt length prefix cannot ask the decoder for gigabytes.
const MAX_COORDS: u32 = 1 << 20;

/// A validated, fully-resolved churn batch, ready to journal and apply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChurnRecord {
    /// A 2-D batch: inject `injected`, heal `healed`.
    D2 {
        /// Nodes to mark faulty.
        injected: Vec<C2>,
        /// Nodes to mark healthy again.
        healed: Vec<C2>,
    },
    /// A 3-D batch.
    D3 {
        /// Nodes to mark faulty.
        injected: Vec<C3>,
        /// Nodes to mark healthy again.
        healed: Vec<C3>,
    },
}

impl ChurnRecord {
    /// Total coordinates in the batch.
    pub fn len(&self) -> usize {
        match self {
            ChurnRecord::D2 { injected, healed } => injected.len() + healed.len(),
            ChurnRecord::D3 { injected, healed } => injected.len() + healed.len(),
        }
    }

    /// True if the batch flips no node at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encode to the WAL payload form: a dimension tag, two counts, then
    /// the coordinate components as little-endian `i32`s.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.len() * 12);
        match self {
            ChurnRecord::D2 { injected, healed } => {
                out.push(2);
                put_u32(&mut out, injected.len() as u32);
                put_u32(&mut out, healed.len() as u32);
                for c in injected.iter().chain(healed) {
                    put_i32(&mut out, c.x);
                    put_i32(&mut out, c.y);
                }
            }
            ChurnRecord::D3 { injected, healed } => {
                out.push(3);
                put_u32(&mut out, injected.len() as u32);
                put_u32(&mut out, healed.len() as u32);
                for c in injected.iter().chain(healed) {
                    put_i32(&mut out, c.x);
                    put_i32(&mut out, c.y);
                    put_i32(&mut out, c.z);
                }
            }
        }
        out
    }

    /// Decode a payload produced by [`encode`](ChurnRecord::encode).
    ///
    /// Fails (with a human-readable reason) on a bad tag, an implausible
    /// count, a short buffer, or trailing bytes — a checksummed record that
    /// still fails here means the writer and reader disagree, which
    /// recovery reports as corruption rather than guessing.
    pub fn decode(payload: &[u8]) -> Result<ChurnRecord, String> {
        let mut r = Reader::new(payload);
        let tag = *r
            .take(1)
            .ok_or("empty churn payload")?
            .first()
            .expect("one byte");
        let n_inj = r.take_u32().ok_or("churn payload missing inject count")?;
        let n_heal = r.take_u32().ok_or("churn payload missing heal count")?;
        if n_inj > MAX_COORDS || n_heal > MAX_COORDS {
            return Err(format!("implausible churn counts {n_inj}/{n_heal}"));
        }
        let rec = match tag {
            2 => {
                let mut read2 = |n: u32, out: &mut Vec<C2>| -> Result<(), String> {
                    for _ in 0..n {
                        let x = r.take_i32().ok_or("short churn payload")?;
                        let y = r.take_i32().ok_or("short churn payload")?;
                        out.push(c2(x, y));
                    }
                    Ok(())
                };
                let mut injected = Vec::with_capacity(n_inj as usize);
                let mut healed = Vec::with_capacity(n_heal as usize);
                read2(n_inj, &mut injected)?;
                read2(n_heal, &mut healed)?;
                ChurnRecord::D2 { injected, healed }
            }
            3 => {
                let mut read3 = |n: u32, out: &mut Vec<C3>| -> Result<(), String> {
                    for _ in 0..n {
                        let x = r.take_i32().ok_or("short churn payload")?;
                        let y = r.take_i32().ok_or("short churn payload")?;
                        let z = r.take_i32().ok_or("short churn payload")?;
                        out.push(c3(x, y, z));
                    }
                    Ok(())
                };
                let mut injected = Vec::with_capacity(n_inj as usize);
                let mut healed = Vec::with_capacity(n_heal as usize);
                read3(n_inj, &mut injected)?;
                read3(n_heal, &mut healed)?;
                ChurnRecord::D3 { injected, healed }
            }
            t => return Err(format!("bad churn dimension tag {t}")),
        };
        if r.remaining() != 0 {
            return Err(format!(
                "{} trailing bytes after churn payload",
                r.remaining()
            ));
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_2d_and_3d() {
        let a = ChurnRecord::D2 {
            injected: vec![c2(0, 0), c2(5, 7)],
            healed: vec![c2(-1, 3)],
        };
        assert_eq!(ChurnRecord::decode(&a.encode()), Ok(a.clone()));
        let b = ChurnRecord::D3 {
            injected: vec![],
            healed: vec![c3(1, 2, 3)],
        };
        assert_eq!(ChurnRecord::decode(&b.encode()), Ok(b));
    }

    #[test]
    fn decode_rejects_structural_damage() {
        let good = ChurnRecord::D2 {
            injected: vec![c2(1, 1)],
            healed: vec![],
        }
        .encode();
        assert!(ChurnRecord::decode(&[]).is_err());
        assert!(ChurnRecord::decode(&good[..good.len() - 1]).is_err());
        let mut tagged = good.clone();
        tagged[0] = 7;
        assert!(ChurnRecord::decode(&tagged).is_err());
        let mut trailing = good;
        trailing.push(0);
        assert!(ChurnRecord::decode(&trailing).is_err());
    }
}
