//! The resident service: one actor thread per shard under a supervisor.
//!
//! Each shard runs a single-threaded loop over an mpsc request channel —
//! all state is owned by the loop, so there is no locking around the
//! models or the journal. The loop composes three layers per request:
//!
//! 1. **admission** ([`crate::admission`]) — data requests are offered to
//!    the shard's virtual-time queue first and shed with typed errors when
//!    the shard is saturated; control requests (snapshot, stats) bypass it,
//! 2. **execution** — [`ShardCore::handle`] inside `catch_unwind`,
//! 3. **supervision** — if the handler panics or an injected crash fires,
//!    the poisoned in-memory state is discarded and the shard is rebuilt
//!    from its journal, exactly the recovery path a process restart would
//!    take. The caller gets a typed error; the next request sees the
//!    recovered shard. If the loop itself dies, the next
//!    [`call`](MeshService::call) respawns it lazily.
//!
//! The service handle is cheap to clone and thread-safe; callers get
//! per-request timeouts and a retry-with-backoff helper for shed errors.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use mesh_topo::par::Parallelism;

use crate::admission::{Admission, AdmissionConfig};
use crate::crash::CrashPoint;
use crate::error::ServiceError;
use crate::shard::{Request, Response, ShardCore, ShardSpec};

/// Service-wide configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Directory holding one journal subdirectory per shard.
    pub root: PathBuf,
    /// Thread budget for model computations inside each shard.
    pub threads: Parallelism,
    /// Admission parameters applied to every shard.
    pub admission: AdmissionConfig,
    /// How long a caller waits for a reply before giving up.
    pub timeout: Duration,
    /// Crash-point hook threaded into every journal operation (inert in
    /// production).
    pub crash: CrashPoint,
}

impl ServiceConfig {
    /// A config with production-ish defaults rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> ServiceConfig {
        ServiceConfig {
            root: root.into(),
            threads: Parallelism::SEQ,
            admission: AdmissionConfig::default(),
            timeout: Duration::from_secs(10),
            crash: CrashPoint::none(),
        }
    }
}

struct Envelope {
    req: Request,
    /// Virtual arrival time for admission (nanoseconds on the caller's
    /// open-loop schedule).
    sched_ns: u64,
    reply: Sender<Result<Response, ServiceError>>,
}

struct ShardEntry {
    spec: ShardSpec,
    dir: PathBuf,
    link: Mutex<Option<ShardLink>>,
}

struct ShardLink {
    tx: Sender<Envelope>,
    join: JoinHandle<()>,
}

/// A running mesh service (see the module docs). Clone freely; dropping
/// the last handle joins the shard threads.
#[derive(Clone)]
pub struct MeshService {
    inner: Arc<ServiceInner>,
}

struct ServiceInner {
    cfg: ServiceConfig,
    shards: Vec<ShardEntry>,
}

impl MeshService {
    /// Open every shard journal under `cfg.root` (recovering as needed)
    /// and start one actor thread per shard.
    pub fn start(cfg: ServiceConfig, specs: &[ShardSpec]) -> Result<MeshService, ServiceError> {
        let mut shards = Vec::with_capacity(specs.len());
        for (i, &spec) in specs.iter().enumerate() {
            let dir = cfg.root.join(format!("shard-{i:04}"));
            // Open on the caller's thread so startup corruption surfaces
            // here, not as a dead channel later.
            let core = ShardCore::open(&dir, spec, cfg.threads, cfg.crash.clone())?;
            let link = spawn_shard(core, cfg.admission);
            shards.push(ShardEntry {
                spec,
                dir,
                link: Mutex::new(Some(link)),
            });
        }
        Ok(MeshService {
            inner: Arc::new(ServiceInner { cfg, shards }),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Send `req` to `shard` with virtual arrival time `sched_ns` and wait
    /// (up to the configured timeout) for the reply.
    ///
    /// If the shard thread is gone (its loop hit an unrecoverable journal
    /// error, or a previous handle shut it down), it is respawned from its
    /// journal first — supervision is lazy but total.
    pub fn call(
        &self,
        shard: usize,
        req: Request,
        sched_ns: u64,
    ) -> Result<Response, ServiceError> {
        let entry = self
            .inner
            .shards
            .get(shard)
            .ok_or(ServiceError::UnknownShard { shard })?;
        let (reply_tx, reply_rx) = mpsc::channel();
        self.dispatch(
            entry,
            Envelope {
                req,
                sched_ns,
                reply: reply_tx,
            },
        )?;
        match reply_rx.recv_timeout(self.inner.cfg.timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServiceError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServiceError::ShardDown),
        }
    }

    /// [`call`](MeshService::call), retrying shed and shard-panic errors up
    /// to `attempts` times with doubling sleeps starting at `backoff`.
    /// Any other outcome returns immediately.
    pub fn call_with_retry(
        &self,
        shard: usize,
        req: Request,
        sched_ns: u64,
        attempts: u32,
        backoff: Duration,
    ) -> Result<Response, ServiceError> {
        let mut delay = backoff;
        let mut last = ServiceError::Timeout;
        for _ in 0..attempts.max(1) {
            match self.call(shard, req.clone(), sched_ns) {
                Err(e) if e.is_shed() || e == ServiceError::ShardPanicked => {
                    last = e;
                    std::thread::sleep(delay);
                    delay = delay.saturating_mul(2);
                }
                other => return other,
            }
        }
        Err(last)
    }

    /// Stop all shard threads and wait for them. Journals stay on disk;
    /// a later [`start`](MeshService::start) over the same root resumes.
    pub fn shutdown(&self) {
        for entry in &self.inner.shards {
            let link = entry.link.lock().expect("shard link lock").take();
            if let Some(l) = link {
                drop(l.tx);
                let _ = l.join.join();
            }
        }
    }

    fn dispatch(&self, entry: &ShardEntry, env: Envelope) -> Result<(), ServiceError> {
        let mut link = entry.link.lock().expect("shard link lock");
        let env = match link.as_ref() {
            Some(l) => match l.tx.send(env) {
                Ok(()) => return Ok(()),
                Err(mpsc::SendError(back)) => {
                    if let Some(dead) = link.take() {
                        let _ = dead.join.join();
                    }
                    back
                }
            },
            None => env,
        };
        let core = ShardCore::open(
            &entry.dir,
            entry.spec,
            self.inner.cfg.threads,
            self.inner.cfg.crash.clone(),
        )?;
        let l = spawn_shard(core, self.inner.cfg.admission);
        l.tx.send(env).map_err(|_| ServiceError::ShardDown)?;
        *link = Some(l);
        Ok(())
    }
}

impl Drop for ServiceInner {
    fn drop(&mut self) {
        for entry in &self.shards {
            let link = entry.link.lock().ok().and_then(|mut l| l.take());
            if let Some(l) = link {
                drop(l.tx);
                let _ = l.join.join();
            }
        }
    }
}

fn spawn_shard(mut core: ShardCore, adm_cfg: AdmissionConfig) -> ShardLink {
    let (tx, rx) = mpsc::channel::<Envelope>();
    let join = std::thread::spawn(move || {
        let mut admission = Admission::new(adm_cfg);
        while let Ok(env) = rx.recv() {
            if let Some(class) = env.req.op_class() {
                if let Err(shed) = admission.offer(env.sched_ns, class) {
                    let _ = env.reply.send(Err(shed));
                    continue;
                }
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| core.handle(&env.req)));
            let reply = match outcome {
                Ok(Ok(resp)) => Ok(resp),
                Ok(Err(e @ ServiceError::Injected(_))) => {
                    // An injected crash may leave memory ahead of or
                    // behind the journal — treat it exactly like a death:
                    // rebuild from disk. The fired hook is not re-armed
                    // (the simulated process is already dead once).
                    match reopen(&core) {
                        Ok(fresh) => {
                            core = fresh;
                            Err(e)
                        }
                        Err(fatal) => {
                            let _ = env.reply.send(Err(fatal));
                            return;
                        }
                    }
                }
                Ok(Err(e)) => Err(e),
                Err(_panic) => match reopen(&core) {
                    Ok(fresh) => {
                        core = fresh;
                        Err(ServiceError::ShardPanicked)
                    }
                    Err(fatal) => {
                        let _ = env.reply.send(Err(fatal));
                        return;
                    }
                },
            };
            let _ = env.reply.send(reply);
        }
    });
    ShardLink { tx, join }
}

fn reopen(core: &ShardCore) -> Result<ShardCore, ServiceError> {
    // The fired crash hook is not re-armed — the simulated process only
    // dies once — so the recovered incarnation journals normally.
    ShardCore::open_counted(
        core.dir(),
        *core.spec(),
        core.par(),
        CrashPoint::none(),
        core.stats().recoveries + 1,
    )
}
