//! The per-shard write-ahead log.
//!
//! # Record format
//!
//! ```text
//! [len: u32 LE] [seq: u64 LE] [payload: len bytes] [check: u64 LE]
//! ```
//!
//! `check` is FNV-1a over everything before it (length, sequence and
//! payload), so a flip of any single covered byte is caught (see
//! [`crate::wire`]) and a damaged length prefix cannot smuggle a phantom
//! record past the checksum: the checksum is read from wherever the
//! corrupted length points, and it would have to match a digest that covers
//! the corrupted length itself.
//!
//! # Torn tails
//!
//! The log is an append-only stream of records. A crash mid-append leaves a
//! torn suffix; [`decode_records`] stops at the first record that is
//! incomplete or fails its checksum and reports the clean prefix length, and
//! [`Wal::open_at`] truncates the file back to that prefix. Committed
//! records are never reinterpreted: decoding is sequential from offset 0,
//! so damage at byte `t` can only affect records at or after `t`.
//!
//! # Sync policy
//!
//! [`SyncPolicy::Always`] issues `sync_data` after every append (real
//! durability); [`SyncPolicy::Never`] is the fsync-free test mode — the
//! crash battery simulates process death, not power loss, so the page cache
//! survives and fsync would only slow the battery down.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crash::{CrashPoint, CrashSite};
use crate::error::ServiceError;
use crate::wire::{fnv1a64, put_u32, put_u64, Reader};

/// Fixed overhead of one record: length + sequence + checksum.
pub const RECORD_OVERHEAD: usize = 4 + 8 + 8;

/// Upper bound on a record payload — a structural sanity check so a torn
/// length prefix cannot ask the decoder to skip gigabytes.
pub const MAX_PAYLOAD: usize = 1 << 24;

/// When appends reach the disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `sync_data` after every append and snapshot write.
    Always,
    /// No explicit syncs (test mode; see the module docs).
    Never,
}

/// Encode one record (see the module docs for the layout).
pub fn encode_record(seq: u64, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_PAYLOAD, "payload exceeds MAX_PAYLOAD");
    let mut out = Vec::with_capacity(RECORD_OVERHEAD + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u64(&mut out, seq);
    out.extend_from_slice(payload);
    let check = fnv1a64(&out);
    put_u64(&mut out, check);
    out
}

/// Decode the clean prefix of a record stream.
///
/// Returns the `(seq, payload)` of every intact record in order, plus the
/// byte length of the clean prefix they occupy. Decoding never fails: a
/// short, oversized or checksum-damaged record simply ends the prefix (a
/// torn tail is data, not an error).
pub fn decode_records(buf: &[u8]) -> (Vec<(u64, Vec<u8>)>, usize) {
    let mut records = Vec::new();
    let mut r = Reader::new(buf);
    let mut clean = 0usize;
    loop {
        let start = r.pos();
        let Some(len) = r.take_u32() else { break };
        if len as usize > MAX_PAYLOAD {
            break;
        }
        let Some(seq) = r.take_u64() else { break };
        let Some(payload) = r.take(len as usize) else {
            break;
        };
        let Some(check) = r.take_u64() else { break };
        if fnv1a64(&buf[start..start + 12 + len as usize]) != check {
            break;
        }
        records.push((seq, payload.to_vec()));
        clean = r.pos();
    }
    (records, clean)
}

/// An open write-ahead log file positioned at its clean end.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    sync: SyncPolicy,
    len: u64,
}

impl Wal {
    /// Open (creating if absent) the log at `path`, truncating it to
    /// `clean_len` — the clean-prefix length a prior [`decode_records`]
    /// pass reported — and positioning for appends.
    pub fn open_at(path: &Path, clean_len: u64, sync: SyncPolicy) -> Result<Wal, ServiceError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| ServiceError::io(path, e))?;
        file.set_len(clean_len)
            .map_err(|e| ServiceError::io(path, e))?;
        let mut wal = Wal {
            path: path.to_path_buf(),
            file,
            sync,
            len: clean_len,
        };
        wal.file
            .seek(SeekFrom::Start(clean_len))
            .map_err(|e| ServiceError::io(&wal.path, e))?;
        Ok(wal)
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current log length in bytes (committed records only).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Append one record, passing through the three append crash sites.
    ///
    /// On [`CrashSite::AppendPartial`] a strict prefix of the record is
    /// written before the error returns — the torn record the recovery path
    /// must discard.
    pub fn append(
        &mut self,
        seq: u64,
        payload: &[u8],
        crash: &CrashPoint,
    ) -> Result<(), ServiceError> {
        crash
            .hit(CrashSite::AppendStart)
            .map_err(ServiceError::Injected)?;
        let rec = encode_record(seq, payload);
        if let Err(site) = crash.hit(CrashSite::AppendPartial) {
            // Simulated death mid-write: leave a torn record behind. The
            // cut lands inside the trailing checksum field (records are at
            // least RECORD_OVERHEAD bytes), so the tail can never validate.
            let _ = self.file.write_all(&rec[..rec.len() - 5]);
            let _ = self.file.flush();
            return Err(ServiceError::Injected(site));
        }
        self.file
            .write_all(&rec)
            .map_err(|e| ServiceError::io(&self.path, e))?;
        if self.sync == SyncPolicy::Always {
            self.file
                .sync_data()
                .map_err(|e| ServiceError::io(&self.path, e))?;
        }
        self.len += rec.len() as u64;
        crash
            .hit(CrashSite::AppendEnd)
            .map_err(ServiceError::Injected)?;
        Ok(())
    }

    /// Empty the log (after a successful snapshot made its records
    /// redundant), passing through the truncate crash site.
    pub fn truncate_all(&mut self, crash: &CrashPoint) -> Result<(), ServiceError> {
        self.file
            .set_len(0)
            .map_err(|e| ServiceError::io(&self.path, e))?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| ServiceError::io(&self.path, e))?;
        if self.sync == SyncPolicy::Always {
            self.file
                .sync_data()
                .map_err(|e| ServiceError::io(&self.path, e))?;
        }
        self.len = 0;
        crash
            .hit(CrashSite::WalTruncate)
            .map_err(ServiceError::Injected)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_stream() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&encode_record(1, b"alpha"));
        buf.extend_from_slice(&encode_record(2, b""));
        buf.extend_from_slice(&encode_record(3, b"gamma"));
        let (recs, clean) = decode_records(&buf);
        assert_eq!(clean, buf.len());
        assert_eq!(
            recs,
            vec![
                (1, b"alpha".to_vec()),
                (2, Vec::new()),
                (3, b"gamma".to_vec())
            ]
        );
    }

    #[test]
    fn torn_tail_yields_clean_prefix() {
        let first = encode_record(1, b"alpha");
        let mut buf = first.clone();
        buf.extend_from_slice(&encode_record(2, b"beta")[..7]);
        let (recs, clean) = decode_records(&buf);
        assert_eq!(recs.len(), 1);
        assert_eq!(clean, first.len());
    }

    #[test]
    fn flipped_byte_ends_prefix() {
        let rec = encode_record(9, b"payload");
        for i in 0..rec.len() {
            let mut buf = rec.clone();
            buf[i] ^= 0x40;
            let (recs, clean) = decode_records(&buf);
            assert!(recs.is_empty(), "flip at {i} produced a record");
            assert_eq!(clean, 0);
        }
    }
}
