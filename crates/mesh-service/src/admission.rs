//! Deterministic per-shard admission control with deadline-based load
//! shedding.
//!
//! Each shard models itself as a single-server queue in *virtual time*: the
//! clock is the caller-supplied scheduled arrival of each request (the
//! open-loop offered schedule), and each admitted request occupies the
//! server for a fixed per-class cost. On every offer the queue first drains
//! entries whose virtual finish time has passed, then sheds:
//!
//! * [`ServiceError::Overloaded`] if the queue already holds `queue_cap`
//!   unfinished requests, or
//! * [`ServiceError::Deadline`] if the predicted queueing delay (previous
//!   backlog finish minus arrival) exceeds `deadline_ns`,
//!
//! and otherwise admits, booking `cost_ns[class]` of virtual service time.
//!
//! Because the decision depends only on the `(arrival, class)` sequence —
//! never on wall-clock measurements — a fixed load profile and seed
//! reproduce the exact same admit/shed pattern on any machine and any
//! thread budget, which is what lets the overload smoke test pin the shed
//! sequence in a golden file.

use crate::error::ServiceError;

/// Request cost classes (indexes into [`AdmissionConfig::cost_ns`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpClass {
    /// Route a packet (policy suite over maintained models).
    Route,
    /// Query one node's region label / MCC membership.
    Query,
    /// Apply a churn batch (journal + model repair).
    Churn,
}

impl OpClass {
    /// Index into per-class cost tables.
    pub fn index(self) -> usize {
        match self {
            OpClass::Route => 0,
            OpClass::Query => 1,
            OpClass::Churn => 2,
        }
    }
}

/// Admission parameters for one shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum unfinished requests queued on the virtual server.
    pub queue_cap: usize,
    /// Maximum predicted queueing delay before a request is shed.
    pub deadline_ns: u64,
    /// Virtual service cost per class, in nanoseconds
    /// (`[route, query, churn]`).
    pub cost_ns: [u64; 3],
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            queue_cap: 64,
            deadline_ns: 50_000_000,
            cost_ns: [200_000, 100_000, 400_000],
        }
    }
}

/// The virtual-time queue state of one shard.
#[derive(Clone, Debug)]
pub struct Admission {
    cfg: AdmissionConfig,
    /// Virtual finish times of admitted, unfinished requests (ascending).
    finishes: std::collections::VecDeque<u64>,
    admitted: u64,
    shed_overloaded: u64,
    shed_deadline: u64,
}

impl Admission {
    /// An empty queue under `cfg`.
    pub fn new(cfg: AdmissionConfig) -> Admission {
        Admission {
            cfg,
            finishes: std::collections::VecDeque::new(),
            admitted: 0,
            shed_overloaded: 0,
            shed_deadline: 0,
        }
    }

    /// Offer a request scheduled at virtual time `arrival_ns`; admit it or
    /// return the typed shed error.
    pub fn offer(&mut self, arrival_ns: u64, class: OpClass) -> Result<(), ServiceError> {
        while matches!(self.finishes.front(), Some(&f) if f <= arrival_ns) {
            self.finishes.pop_front();
        }
        if self.finishes.len() >= self.cfg.queue_cap {
            self.shed_overloaded += 1;
            return Err(ServiceError::Overloaded {
                depth: self.finishes.len(),
            });
        }
        let backlog_end = self.finishes.back().copied().unwrap_or(arrival_ns);
        let start = backlog_end.max(arrival_ns);
        let wait_ns = start - arrival_ns;
        if wait_ns > self.cfg.deadline_ns {
            self.shed_deadline += 1;
            return Err(ServiceError::Deadline { wait_ns });
        }
        self.finishes
            .push_back(start + self.cfg.cost_ns[class.index()]);
        self.admitted += 1;
        Ok(())
    }

    /// Requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests shed with [`ServiceError::Overloaded`].
    pub fn shed_overloaded(&self) -> u64 {
        self.shed_overloaded
    }

    /// Requests shed with [`ServiceError::Deadline`].
    pub fn shed_deadline(&self) -> u64 {
        self.shed_deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(cap: usize, deadline: u64, cost: u64) -> AdmissionConfig {
        AdmissionConfig {
            queue_cap: cap,
            deadline_ns: deadline,
            cost_ns: [cost, cost, cost],
        }
    }

    #[test]
    fn under_load_everything_admits() {
        // Arrivals spaced wider than the service cost never queue.
        let mut a = Admission::new(cfg(4, 0, 10));
        for t in (0..100).step_by(10) {
            assert_eq!(a.offer(t, OpClass::Route), Ok(()));
        }
        assert_eq!(a.admitted(), 10);
        assert_eq!(a.shed_overloaded() + a.shed_deadline(), 0);
    }

    #[test]
    fn queue_cap_sheds_overloaded() {
        // Simultaneous arrivals with a huge deadline: cap is the binding
        // constraint.
        let mut a = Admission::new(cfg(3, u64::MAX, 100));
        for _ in 0..3 {
            assert_eq!(a.offer(0, OpClass::Route), Ok(()));
        }
        assert_eq!(
            a.offer(0, OpClass::Route),
            Err(ServiceError::Overloaded { depth: 3 })
        );
    }

    #[test]
    fn deadline_sheds_before_cap() {
        // Big cap, tight deadline: the second simultaneous arrival would
        // wait a full service time.
        let mut a = Admission::new(cfg(100, 50, 80));
        assert_eq!(a.offer(0, OpClass::Churn), Ok(()));
        assert_eq!(
            a.offer(0, OpClass::Churn),
            Err(ServiceError::Deadline { wait_ns: 80 })
        );
        // After the backlog drains, admission resumes.
        assert_eq!(a.offer(200, OpClass::Churn), Ok(()));
    }

    #[test]
    fn decision_sequence_is_deterministic() {
        let run = || {
            let mut a = Admission::new(cfg(2, 30, 25));
            (0..40u64)
                .map(|i| a.offer(i * 7, OpClass::Query).is_ok())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
