//! Shard snapshots: the serialized fault `NodeSet` plus the generation
//! counter it reflects.
//!
//! A snapshot is everything a shard needs to rebuild its
//! `IncrementalModels` without replaying history: the mesh geometry is
//! already in the [`ShardSpec`](crate::shard::ShardSpec) (and is written
//! into the snapshot only to cross-check it), the fault configuration is
//! the `NodeSet`'s backing words verbatim, and every derived model
//! (labellings, components, MCCs) is a pure function of those two — so
//! "fault words + generation" *is* the state.
//!
//! # Format
//!
//! ```text
//! magic "MCCSNAP1" · dim u8 · wrap u8 · border u8 · pad u8
//! extents 3×i32 LE · gen u64 LE · nbits u64 LE · nwords u32 LE
//! words nwords×u64 LE · check u64 LE (FNV-1a over everything before it)
//! ```
//!
//! # Atomicity
//!
//! [`write()`] streams to `snapshot.tmp` and renames it over `snapshot.bin` —
//! the POSIX-atomic publish. A crash before the rename leaves a stale temp
//! file that recovery deletes; a crash after the rename but before the WAL
//! truncation leaves WAL records the snapshot already covers, which replay
//! skips by sequence number.

use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::Path;

use fault_model::BorderPolicy;

use crate::crash::{CrashPoint, CrashSite};
use crate::error::ServiceError;
use crate::wal::SyncPolicy;
use crate::wire::{fnv1a64, put_i32, put_u32, put_u64, Reader};

const MAGIC: &[u8; 8] = b"MCCSNAP1";

/// Upper bound on the fault-set word count — a structural sanity check.
const MAX_WORDS: u32 = 1 << 26;

/// A decoded snapshot, not yet checked against any shard spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Mesh dimensionality (2 or 3).
    pub dim: u8,
    /// True for a torus.
    pub wrap: bool,
    /// The border policy the shard labels with.
    pub border: BorderPolicy,
    /// Extents (`[width, height, 0]` in 2-D, `[nx, ny, nz]` in 3-D).
    pub extents: [i32; 3],
    /// The churn generation this fault configuration reflects.
    pub gen: u64,
    /// Node-space size in bits.
    pub nbits: u64,
    /// The fault set's backing words.
    pub words: Vec<u64>,
}

fn border_tag(b: BorderPolicy) -> u8 {
    match b {
        BorderPolicy::BorderSafe => 0,
        BorderPolicy::BorderBlocked => 1,
    }
}

fn border_from_tag(t: u8) -> Option<BorderPolicy> {
    match t {
        0 => Some(BorderPolicy::BorderSafe),
        1 => Some(BorderPolicy::BorderBlocked),
        _ => None,
    }
}

/// Encode a snapshot to its on-disk byte form.
pub fn encode(snap: &Snapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(48 + snap.words.len() * 8);
    out.extend_from_slice(MAGIC);
    out.push(snap.dim);
    out.push(u8::from(snap.wrap));
    out.push(border_tag(snap.border));
    out.push(0);
    for e in snap.extents {
        put_i32(&mut out, e);
    }
    put_u64(&mut out, snap.gen);
    put_u64(&mut out, snap.nbits);
    put_u32(&mut out, snap.words.len() as u32);
    for &w in &snap.words {
        put_u64(&mut out, w);
    }
    let check = fnv1a64(&out);
    put_u64(&mut out, check);
    out
}

/// Decode an on-disk snapshot, verifying structure and checksum.
pub fn decode(buf: &[u8]) -> Result<Snapshot, String> {
    if buf.len() < 8 + MAGIC.len() {
        return Err("snapshot file too short".into());
    }
    let (body, check_bytes) = buf.split_at(buf.len() - 8);
    let check = u64::from_le_bytes(check_bytes.try_into().expect("8 bytes"));
    if fnv1a64(body) != check {
        return Err("snapshot checksum mismatch".into());
    }
    let mut r = Reader::new(body);
    if r.take(8) != Some(MAGIC.as_slice()) {
        return Err("bad snapshot magic".into());
    }
    let head = r.take(4).ok_or("snapshot header truncated")?;
    let (dim, wrap_tag, border_tag) = (head[0], head[1], head[2]);
    if dim != 2 && dim != 3 {
        return Err(format!("bad snapshot dimension {dim}"));
    }
    let border = border_from_tag(border_tag).ok_or("bad snapshot border tag")?;
    let mut extents = [0i32; 3];
    for e in &mut extents {
        *e = r.take_i32().ok_or("snapshot extents truncated")?;
    }
    let gen = r.take_u64().ok_or("snapshot generation truncated")?;
    let nbits = r.take_u64().ok_or("snapshot nbits truncated")?;
    let nwords = r.take_u32().ok_or("snapshot word count truncated")?;
    if nwords > MAX_WORDS {
        return Err(format!("implausible snapshot word count {nwords}"));
    }
    let mut words = Vec::with_capacity(nwords as usize);
    for _ in 0..nwords {
        words.push(r.take_u64().ok_or("snapshot words truncated")?);
    }
    if r.remaining() != 0 {
        return Err(format!("{} trailing snapshot bytes", r.remaining()));
    }
    Ok(Snapshot {
        dim,
        wrap: wrap_tag != 0,
        border,
        extents,
        gen,
        nbits,
        words,
    })
}

/// Load the snapshot at `path` if one exists.
///
/// A missing file means "no snapshot yet" (`Ok(None)`); a present but
/// damaged file is real corruption — snapshot publication is atomic, so
/// unlike a WAL tail there is no benign way for it to be half-written.
pub fn load(path: &Path) -> Result<Option<Snapshot>, ServiceError> {
    let buf = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(ServiceError::io(path, e)),
    };
    decode(&buf)
        .map(Some)
        .map_err(|detail| ServiceError::Corrupt {
            path: path.to_path_buf(),
            detail,
        })
}

/// Atomically publish `snap` at `path` via `tmp`, passing through the two
/// snapshot crash sites.
pub fn write(
    path: &Path,
    tmp: &Path,
    snap: &Snapshot,
    sync: SyncPolicy,
    crash: &CrashPoint,
) -> Result<(), ServiceError> {
    let bytes = encode(snap);
    {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(tmp)
            .map_err(|e| ServiceError::io(tmp, e))?;
        file.write_all(&bytes)
            .map_err(|e| ServiceError::io(tmp, e))?;
        if sync == SyncPolicy::Always {
            file.sync_data().map_err(|e| ServiceError::io(tmp, e))?;
        }
    }
    crash
        .hit(CrashSite::SnapshotTmp)
        .map_err(ServiceError::Injected)?;
    fs::rename(tmp, path).map_err(|e| ServiceError::io(tmp, e))?;
    crash
        .hit(CrashSite::SnapshotRename)
        .map_err(ServiceError::Injected)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            dim: 2,
            wrap: false,
            border: BorderPolicy::BorderSafe,
            extents: [12, 8, 0],
            gen: 42,
            nbits: 96,
            words: vec![0b1011, u64::MAX],
        }
    }

    #[test]
    fn round_trip() {
        let s = sample();
        assert_eq!(decode(&encode(&s)), Ok(s));
    }

    #[test]
    fn any_flip_is_caught() {
        let bytes = encode(&sample());
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0x10;
            assert!(decode(&b).is_err(), "flip at byte {i} decoded");
        }
    }
}
