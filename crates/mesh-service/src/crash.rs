//! Crash-point fault injection for the durability path.
//!
//! Every boundary at which a real process could die mid-update — before a
//! WAL append, after a partial append, after a complete append, after the
//! snapshot temp file is written, after it is renamed into place, after the
//! WAL is truncated — is threaded through a [`CrashPoint`] hook. In
//! production the hook is inert ([`CrashPoint::none`]); the battery arms it
//! with [`CrashPoint::after`] to kill the shard at exactly the `n`-th site
//! it reaches, then restarts from the journal and pins the recovered state
//! against an uninterrupted reference run. [`CrashPoint::counting`] never
//! fires and is used to enumerate how many sites a trace passes through.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One durability boundary the shard can die at.
///
/// The `Append*` sites bracket a WAL record write (with `AppendPartial`
/// leaving a torn record on disk); the `Snapshot*` and `WalTruncate` sites
/// bracket the three steps of a snapshot cycle (write temp file, rename
/// over the old snapshot, truncate the WAL).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashSite {
    /// Before any byte of a WAL record reaches the file.
    AppendStart,
    /// After a strict prefix of a WAL record reached the file (a torn
    /// record — recovery must discard it).
    AppendPartial,
    /// After a WAL record is fully written.
    AppendEnd,
    /// After the snapshot temp file is fully written, before the rename.
    SnapshotTmp,
    /// After the temp file is renamed over the snapshot, before the WAL is
    /// truncated (the WAL still holds records the snapshot already covers).
    SnapshotRename,
    /// After the WAL is truncated — the snapshot cycle is complete.
    WalTruncate,
}

impl std::fmt::Display for CrashSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CrashSite::AppendStart => "append-start",
            CrashSite::AppendPartial => "append-partial",
            CrashSite::AppendEnd => "append-end",
            CrashSite::SnapshotTmp => "snapshot-tmp",
            CrashSite::SnapshotRename => "snapshot-rename",
            CrashSite::WalTruncate => "wal-truncate",
        };
        f.write_str(s)
    }
}

struct CrashInner {
    /// Sites remaining before the hook fires; stays at zero once fired.
    countdown: AtomicU64,
    /// Total sites passed through (including the firing one).
    seen: AtomicU64,
}

/// A shared, thread-safe crash trigger (see the module docs).
///
/// Clones share state, so the service, its shards and the test harness all
/// observe one countdown.
#[derive(Clone, Default)]
pub struct CrashPoint {
    inner: Option<Arc<CrashInner>>,
}

impl CrashPoint {
    /// An inert hook: every site passes.
    pub fn none() -> CrashPoint {
        CrashPoint { inner: None }
    }

    /// A hook that fires at the `n`-th site reached (0-based) and at every
    /// site after it — once the simulated process is dead it stays dead.
    pub fn after(n: u64) -> CrashPoint {
        CrashPoint {
            inner: Some(Arc::new(CrashInner {
                countdown: AtomicU64::new(n),
                seen: AtomicU64::new(0),
            })),
        }
    }

    /// A hook that never fires but still counts sites — pass one through a
    /// full run to learn how many kill sites [`after`] can target.
    ///
    /// [`after`]: CrashPoint::after
    pub fn counting() -> CrashPoint {
        CrashPoint::after(u64::MAX)
    }

    /// Sites passed through so far (0 for an inert hook).
    pub fn sites_seen(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.seen.load(Ordering::SeqCst))
    }

    /// Pass through one site: `Ok` to continue, `Err` if the simulated
    /// crash fires here.
    pub fn hit(&self, site: CrashSite) -> Result<(), CrashSite> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        inner.seen.fetch_add(1, Ordering::SeqCst);
        let fired = inner
            .countdown
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_err();
        if fired {
            Err(site)
        } else {
            Ok(())
        }
    }
}

impl std::fmt::Debug for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("CrashPoint::none"),
            Some(i) => f
                .debug_struct("CrashPoint")
                .field("countdown", &i.countdown.load(Ordering::SeqCst))
                .field("seen", &i.seen.load(Ordering::SeqCst))
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fires() {
        let cp = CrashPoint::none();
        for _ in 0..100 {
            assert!(cp.hit(CrashSite::AppendStart).is_ok());
        }
        assert_eq!(cp.sites_seen(), 0);
    }

    #[test]
    fn after_fires_at_exact_site_and_stays_fired() {
        let cp = CrashPoint::after(2);
        assert!(cp.hit(CrashSite::AppendStart).is_ok());
        assert!(cp.hit(CrashSite::AppendEnd).is_ok());
        assert_eq!(cp.hit(CrashSite::SnapshotTmp), Err(CrashSite::SnapshotTmp));
        // Dead stays dead.
        assert_eq!(cp.hit(CrashSite::AppendStart), Err(CrashSite::AppendStart));
        assert_eq!(cp.sites_seen(), 4);
    }

    #[test]
    fn counting_counts_without_firing() {
        let cp = CrashPoint::counting();
        for _ in 0..10 {
            assert!(cp.hit(CrashSite::WalTruncate).is_ok());
        }
        assert_eq!(cp.sites_seen(), 10);
    }

    #[test]
    fn clones_share_state() {
        let cp = CrashPoint::after(1);
        let other = cp.clone();
        assert!(cp.hit(CrashSite::AppendStart).is_ok());
        assert!(other.hit(CrashSite::AppendStart).is_err());
    }
}
