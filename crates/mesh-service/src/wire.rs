//! Little-endian wire primitives and the FNV-1a checksum shared by the WAL
//! record codec and the snapshot format.
//!
//! Everything on disk is a concatenation of fixed-width little-endian
//! integers, so a `put_*`/`Reader` pair is the entire serialization story —
//! no framing library, no self-describing schema. The checksum is FNV-1a
//! over the raw bytes: every accumulator step (`h ← (h ⊕ b) · P` with odd
//! `P`) is injective in `b` and in `h`, so changing any single covered byte
//! changes the final digest — the property the torn-tail detector and the
//! flipped-byte proptests rely on.

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit, odd — multiplication by it is injective mod 2^64).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit digest of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Append a `u32` in little-endian order.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` in little-endian order.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i32` in little-endian order.
pub fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Sequential little-endian reader over a byte slice.
///
/// Every `take_*` either yields a value or reports the buffer ran short —
/// decoding never panics, which is what lets the WAL treat arbitrary torn
/// tails as data.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current offset from the start of the buffer.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Consume `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    /// Consume a little-endian `u32`.
    pub fn take_u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    /// Consume a little-endian `u64`.
    pub fn take_u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    /// Consume a little-endian `i32`.
    pub fn take_i32(&mut self) -> Option<i32> {
        self.take(4)
            .map(|s| i32::from_le_bytes(s.try_into().expect("4 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, u64::MAX - 7);
        put_i32(&mut buf, -12345);
        let mut r = Reader::new(&buf);
        assert_eq!(r.take_u32(), Some(0xdead_beef));
        assert_eq!(r.take_u64(), Some(u64::MAX - 7));
        assert_eq!(r.take_i32(), Some(-12345));
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.take_u32(), None);
    }

    #[test]
    fn fnv_single_byte_flip_changes_digest() {
        let base: Vec<u8> = (0..64u8).collect();
        let h = fnv1a64(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(fnv1a64(&flipped), h, "flip at byte {i} bit {bit}");
            }
        }
    }
}
