//! # mesh-service — the crash-safe resident mesh service
//!
//! A long-lived service owning many mesh instances, sharded by mesh id.
//! Each shard is a single-threaded actor over an mpsc channel serving
//! route / query-region / churn / snapshot / stats requests against its
//! own [`fault_model::IncrementalModels2`]/[`fault_model::IncrementalModels3`]
//! cache, with three robustness layers the rest of the workspace only
//! simulates:
//!
//! * **durability** ([`wal`], [`snapshot`]) — every state-mutating op is
//!   appended to a per-shard write-ahead log (length-prefixed, checksummed
//!   records) *before* it is applied; periodic snapshots (the serialized
//!   fault `NodeSet` plus a generation counter) truncate the log; recovery
//!   loads the snapshot, replays the committed WAL suffix and discards the
//!   torn tail at the first bad checksum,
//! * **fault injection** ([`crash`]) — every append/snapshot/truncate
//!   boundary passes through a [`crash::CrashPoint`] hook, so the test
//!   battery can kill a shard at *every* such site (plus every byte-level
//!   torn-tail truncation) and pin recovered state bit-for-bit against an
//!   uninterrupted reference run,
//! * **overload shedding** ([`admission`]) — each shard fronts a bounded
//!   deterministic virtual-time queue; saturation yields typed
//!   [`ServiceError::Overloaded`]/[`ServiceError::Deadline`] errors and a
//!   retry-with-backoff helper instead of collapse.
//!
//! # Example
//!
//! ```
//! use mesh_service::prelude::*;
//! use mesh_topo::coord::c2;
//!
//! let root = TempDir::new("doc");
//! let spec = ShardSpec::new(
//!     Geometry::M2 { width: 8, height: 8, wrap: false },
//!     4, // snapshot every 4 churn ops
//! );
//! let svc = MeshService::start(ServiceConfig::new(root.path()), &[spec]).unwrap();
//!
//! // Inject two faults, then route around them.
//! let r = svc.call(
//!     0,
//!     Request::Churn2 { injected: vec![c2(3, 4), c2(4, 3)], healed: vec![] },
//!     0,
//! );
//! assert_eq!(r, Ok(Response::Churn { gen: 1 }));
//! let r = svc.call(0, Request::Route2 { s: c2(0, 0), d: c2(7, 7), seed: 7 }, 0).unwrap();
//! assert_eq!(r, Response::Route { delivered: true, hops: 14 });
//!
//! // Malformed churn is rejected; the shard stays up.
//! let bad = svc.call(
//!     0,
//!     Request::Churn2 { injected: vec![c2(3, 4)], healed: vec![] },
//!     0,
//! );
//! assert!(matches!(bad, Err(ServiceError::Rejected { .. })));
//! assert!(svc.call(0, Request::Stats, 0).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod crash;
pub mod error;
pub mod ops;
pub mod service;
pub mod shard;
pub mod snapshot;
pub mod testutil;
pub mod wal;
pub mod wire;

pub use admission::{Admission, AdmissionConfig, OpClass};
pub use crash::{CrashPoint, CrashSite};
pub use error::ServiceError;
pub use ops::ChurnRecord;
pub use service::{MeshService, ServiceConfig};
pub use shard::{
    Geometry, Request, Response, ShardCore, ShardModels, ShardSpec, ShardStats, StateDigest,
};
pub use wal::SyncPolicy;

/// Everything a service caller typically needs.
pub mod prelude {
    pub use crate::admission::AdmissionConfig;
    pub use crate::crash::CrashPoint;
    pub use crate::error::ServiceError;
    pub use crate::service::{MeshService, ServiceConfig};
    pub use crate::shard::{Geometry, Request, Response, ShardSpec};
    pub use crate::testutil::TempDir;
    pub use crate::wal::SyncPolicy;
}
