//! Self-cleaning temp directories for journal tests (the workspace has no
//! `tempfile` dependency; this is the few lines of it the tests need).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A unique directory under the system temp dir, removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create `mcc-service-<tag>-<pid>-<n>` under the system temp dir.
    ///
    /// # Panics
    /// If the directory cannot be created (tests have no graceful path).
    pub fn new(tag: &str) -> TempDir {
        let n = COUNTER.fetch_add(1, Ordering::SeqCst);
        let path =
            std::env::temp_dir().join(format!("mcc-service-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path inside the directory.
    pub fn join(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
