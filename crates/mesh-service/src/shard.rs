//! One shard: a single mesh instance, its `IncrementalModels` cache, and
//! its journal (WAL + snapshot).
//!
//! A [`ShardCore`] is the synchronous, single-threaded state machine the
//! actor loop of [`crate::service`] drives. Requests either read the
//! maintained models (route, query, stats) or mutate the fault
//! configuration (churn), and every mutation follows the write-ahead
//! discipline:
//!
//! 1. **check** — validate the batch against the current state
//!    ([`fault_model`]'s `check`, surfaced as
//!    [`ServiceError::Rejected`]
//!    without touching anything),
//! 2. **journal** — append the resolved record to the WAL,
//! 3. **apply** — mutate the models; infallible after step 1, so a durable
//!    record always corresponds to an applicable op.
//!
//! Recovery ([`ShardCore::open`]) is the inverse: delete a stale snapshot
//! temp file, load the snapshot (if any), rebuild the mesh from the spec
//! plus the snapshot's fault words, replay the WAL's clean prefix
//! (skipping records the snapshot already covers, rejecting sequence
//! gaps), and truncate the torn tail. Determinism: every journaled record
//! is a *resolved* coordinate batch — seed-driven sampling happens before
//! journaling — so replay is a pure fold over the journal, independent of
//! wall clock, thread budget and restart count.

use std::fs;
use std::path::{Path, PathBuf};

use fault_model::{BorderPolicy, IncrementalModels2, IncrementalModels3};
use mcc_routing::{Policy, Router2, Router3};
use mesh_topo::coord::{C2, C3};
use mesh_topo::nodeset::NodeSet;
use mesh_topo::par::Parallelism;
use mesh_topo::{Frame2, Frame3, Mesh2D, Mesh3D};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::crash::CrashPoint;
use crate::error::ServiceError;
use crate::ops::ChurnRecord;
use crate::snapshot::{self, Snapshot};
use crate::wal::{decode_records, SyncPolicy, Wal};

/// WAL file name inside a shard directory.
pub const WAL_FILE: &str = "wal.log";
/// Snapshot file name inside a shard directory.
pub const SNAP_FILE: &str = "snapshot.bin";
/// Snapshot temp file name (crash-safe publish staging).
pub const SNAP_TMP: &str = "snapshot.tmp";

/// How many random probes a seed-driven sampler makes before falling back
/// to a linear scan.
const SAMPLE_ATTEMPTS: usize = 64;

/// The mesh geometry one shard owns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Geometry {
    /// A 2-D mesh (or torus).
    M2 {
        /// Extent along X.
        width: i32,
        /// Extent along Y.
        height: i32,
        /// True for a torus.
        wrap: bool,
    },
    /// A 3-D mesh (or torus).
    M3 {
        /// Extent along X.
        nx: i32,
        /// Extent along Y.
        ny: i32,
        /// Extent along Z.
        nz: i32,
        /// True for a torus.
        wrap: bool,
    },
}

impl Geometry {
    /// Mesh dimensionality (2 or 3).
    pub fn dim(&self) -> u8 {
        match self {
            Geometry::M2 { .. } => 2,
            Geometry::M3 { .. } => 3,
        }
    }

    /// True for torus geometries.
    pub fn wraps(&self) -> bool {
        match *self {
            Geometry::M2 { wrap, .. } | Geometry::M3 { wrap, .. } => wrap,
        }
    }

    /// Extents, zero-padded to three axes.
    pub fn extents(&self) -> [i32; 3] {
        match *self {
            Geometry::M2 { width, height, .. } => [width, height, 0],
            Geometry::M3 { nx, ny, nz, .. } => [nx, ny, nz],
        }
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        match *self {
            Geometry::M2 { width, height, .. } => width as usize * height as usize,
            Geometry::M3 { nx, ny, nz, .. } => nx as usize * ny as usize * nz as usize,
        }
    }
}

/// Everything needed to (re)build one shard from an empty directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// The mesh geometry.
    pub geom: Geometry,
    /// Labelling border policy.
    pub border: BorderPolicy,
    /// Snapshot after this many churn ops since the last snapshot
    /// (0 = never snapshot automatically).
    pub snapshot_every: u64,
    /// WAL / snapshot sync policy.
    pub sync: SyncPolicy,
}

impl ShardSpec {
    /// A test-friendly spec: fsync-free, snapshotting every
    /// `snapshot_every` ops.
    pub fn new(geom: Geometry, snapshot_every: u64) -> ShardSpec {
        ShardSpec {
            geom,
            border: BorderPolicy::BorderSafe,
            snapshot_every,
            sync: SyncPolicy::Never,
        }
    }
}

/// A request a shard can serve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Route between two explicit 2-D endpoints.
    Route2 {
        /// Source.
        s: C2,
        /// Destination.
        d: C2,
        /// Policy seed.
        seed: u64,
    },
    /// Route between two explicit 3-D endpoints.
    Route3 {
        /// Source.
        s: C3,
        /// Destination.
        d: C3,
        /// Policy seed.
        seed: u64,
    },
    /// Route between a seed-sampled healthy pair at least `min_dist` apart.
    RouteRandom {
        /// Sampling + policy seed.
        seed: u64,
        /// Minimum topology-aware source/destination distance.
        min_dist: u32,
    },
    /// Query the label and region membership of one 2-D node.
    Query2(C2),
    /// Query the label and region membership of one 3-D node.
    Query3(C3),
    /// Query a seed-sampled node.
    QueryRandom {
        /// Sampling seed.
        seed: u64,
    },
    /// Apply an explicit 2-D churn batch.
    Churn2 {
        /// Nodes to mark faulty.
        injected: Vec<C2>,
        /// Nodes to mark healthy.
        healed: Vec<C2>,
    },
    /// Apply an explicit 3-D churn batch.
    Churn3 {
        /// Nodes to mark faulty.
        injected: Vec<C3>,
        /// Nodes to mark healthy.
        healed: Vec<C3>,
    },
    /// Heal one seed-sampled faulty node and inject one seed-sampled
    /// healthy node (steady-state churn; resolved before journaling).
    ChurnRandom {
        /// Sampling seed.
        seed: u64,
    },
    /// Force a snapshot now.
    Snapshot,
    /// Report shard statistics.
    Stats,
    /// Panic the shard (supervision testing — the supervisor must restart
    /// it from its journal).
    Panic,
}

impl Request {
    /// The admission cost class, or `None` for control requests that
    /// bypass load shedding.
    pub fn op_class(&self) -> Option<crate::admission::OpClass> {
        use crate::admission::OpClass;
        match self {
            Request::Route2 { .. } | Request::Route3 { .. } | Request::RouteRandom { .. } => {
                Some(OpClass::Route)
            }
            Request::Query2(_) | Request::Query3(_) | Request::QueryRandom { .. } => {
                Some(OpClass::Query)
            }
            Request::Churn2 { .. } | Request::Churn3 { .. } | Request::ChurnRandom { .. } => {
                Some(OpClass::Churn)
            }
            Request::Snapshot | Request::Stats | Request::Panic => None,
        }
    }
}

/// A successful reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Outcome of a route request.
    Route {
        /// True if the packet reached the destination.
        delivered: bool,
        /// Hops taken.
        hops: usize,
    },
    /// Outcome of a region query.
    Region {
        /// The node's status label (Debug form, e.g. `safe`, `faulty`).
        status: String,
        /// True if the node is in the unsafe set.
        in_unsafe: bool,
        /// Number of MCCs in the identity orientation.
        mccs: usize,
    },
    /// Outcome of a churn request.
    Churn {
        /// Generation after the batch applied.
        gen: u64,
    },
    /// Outcome of a snapshot request.
    Snapshot {
        /// Generation the snapshot covers.
        gen: u64,
    },
    /// Shard statistics.
    Stats(ShardStats),
}

/// Observable shard counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Durable churn generation.
    pub gen: u64,
    /// Generation the last snapshot covers.
    pub snapshot_gen: u64,
    /// Churn ops applied by this incarnation (excludes replayed ops).
    pub ops_applied: u64,
    /// Committed WAL bytes.
    pub wal_bytes: u64,
    /// Current fault count.
    pub faults: usize,
    /// Total nodes.
    pub nodes: usize,
    /// Times this shard has been restarted from its journal.
    pub recoveries: u64,
}

/// Bit-for-bit comparable shard state: the durable generation, the fault
/// configuration, and every model derived from it in the identity
/// orientation (statuses, unsafe set, component cells, MCC shapes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateDigest {
    /// Durable churn generation.
    pub gen: u64,
    /// The fault set.
    pub faults: NodeSet,
    /// Per-node status labels (Debug form, joined).
    pub statuses: String,
    /// The unsafe-node set.
    pub unsafe_set: NodeSet,
    /// MCC shapes (Debug form).
    pub mccs: String,
    /// Component decomposition (Debug form).
    pub comps: String,
}

/// The dimension-erased model cache a shard owns.
#[derive(Clone, Debug)]
pub enum ShardModels {
    /// 2-D models (boxed: the caches are KiB-sized, the enum should not be).
    D2(Box<IncrementalModels2>),
    /// 3-D models.
    D3(Box<IncrementalModels3>),
}

impl ShardModels {
    /// A fault-free cache for `spec`'s geometry.
    pub fn fresh(spec: &ShardSpec, par: Parallelism) -> ShardModels {
        ShardModels::from_fault_words(spec, None, par).expect("fresh build cannot mismatch")
    }

    /// Rebuild a cache from snapshot fault words (or fault-free for
    /// `None`), validating the word count against the geometry.
    pub fn from_fault_words(
        spec: &ShardSpec,
        faults: Option<(usize, Vec<u64>)>,
        par: Parallelism,
    ) -> Result<ShardModels, String> {
        let nodes = spec.geom.node_count();
        let set = match faults {
            None => None,
            Some((nbits, words)) => {
                if nbits != nodes || words.len() != nbits.div_ceil(64) {
                    return Err(format!(
                        "fault set covers {nbits} nodes in {} words, geometry has {nodes}",
                        words.len()
                    ));
                }
                Some(NodeSet::from_raw_words(nbits, words))
            }
        };
        Ok(match spec.geom {
            Geometry::M2 {
                width,
                height,
                wrap,
            } => {
                let mut mesh = if wrap {
                    Mesh2D::torus(width, height)
                } else {
                    Mesh2D::new(width, height)
                };
                if let Some(set) = set {
                    mesh.inject_fault_set(&set);
                }
                ShardModels::D2(Box::new(IncrementalModels2::with_parallelism(
                    mesh,
                    spec.border,
                    par,
                )))
            }
            Geometry::M3 { nx, ny, nz, wrap } => {
                let mut mesh = if wrap {
                    Mesh3D::torus(nx, ny, nz)
                } else {
                    Mesh3D::new(nx, ny, nz)
                };
                if let Some(set) = set {
                    mesh.inject_fault_set(&set);
                }
                ShardModels::D3(Box::new(IncrementalModels3::with_parallelism(
                    mesh,
                    spec.border,
                    par,
                )))
            }
        })
    }

    /// Mesh dimensionality (2 or 3).
    pub fn dim(&self) -> u8 {
        match self {
            ShardModels::D2(_) => 2,
            ShardModels::D3(_) => 3,
        }
    }

    /// Current fault count.
    pub fn fault_count(&self) -> usize {
        match self {
            ShardModels::D2(inc) => inc.mesh().fault_set().len(),
            ShardModels::D3(inc) => inc.mesh().fault_set().len(),
        }
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        match self {
            ShardModels::D2(inc) => inc.mesh().node_count(),
            ShardModels::D3(inc) => inc.mesh().node_count(),
        }
    }

    /// The fault set as `(nbits, words)` — the snapshot payload.
    pub fn fault_words(&self) -> (usize, Vec<u64>) {
        match self {
            ShardModels::D2(inc) => {
                let set = inc.mesh().fault_set();
                (set.capacity(), set.words().to_vec())
            }
            ShardModels::D3(inc) => {
                let set = inc.mesh().fault_set();
                (set.capacity(), set.words().to_vec())
            }
        }
    }

    /// Validate a churn record against the current state without applying
    /// it (dimension match plus the fault-model batch checks).
    pub fn check(&self, rec: &ChurnRecord) -> Result<(), String> {
        match (self, rec) {
            (ShardModels::D2(inc), ChurnRecord::D2 { injected, healed }) => {
                inc.check(injected, healed).map_err(|e| e.to_string())
            }
            (ShardModels::D3(inc), ChurnRecord::D3 { injected, healed }) => {
                inc.check(injected, healed).map_err(|e| e.to_string())
            }
            _ => Err(format!(
                "churn batch is {}-D but shard is {}-D",
                if matches!(rec, ChurnRecord::D2 { .. }) {
                    2
                } else {
                    3
                },
                self.dim()
            )),
        }
    }

    /// Apply a churn record that already passed [`check`](ShardModels::check).
    ///
    /// # Panics
    /// If the record is invalid for the current state.
    pub fn apply(&mut self, rec: &ChurnRecord) {
        self.try_apply(rec).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible apply (check + mutate in one step) — the replay path.
    pub fn try_apply(&mut self, rec: &ChurnRecord) -> Result<(), String> {
        self.check(rec)?;
        match (self, rec) {
            (ShardModels::D2(inc), ChurnRecord::D2 { injected, healed }) => {
                inc.try_apply(injected, healed).map_err(|e| e.to_string())
            }
            (ShardModels::D3(inc), ChurnRecord::D3 { injected, healed }) => {
                inc.try_apply(injected, healed).map_err(|e| e.to_string())
            }
            _ => unreachable!("check already matched dimensions"),
        }
    }

    /// The full comparable state in the identity orientation. `gen` is the
    /// durable generation the caller tracks (the internal model generation
    /// restarts at zero on recovery and is deliberately not compared).
    pub fn digest(&mut self, gen: u64) -> StateDigest {
        match self {
            ShardModels::D2(inc) => {
                let frame = Frame2::identity(inc.mesh());
                let faults = inc.mesh().fault_set().clone();
                let m = inc.models(frame);
                StateDigest {
                    gen,
                    faults,
                    statuses: m
                        .lab
                        .iter()
                        .map(|(_, s)| format!("{s:?}"))
                        .collect::<Vec<_>>()
                        .join(","),
                    unsafe_set: m.lab.unsafe_set().clone(),
                    mccs: format!("{:?}", m.mccs),
                    comps: format!("{:?}", m.comps),
                }
            }
            ShardModels::D3(inc) => {
                let frame = Frame3::identity(inc.mesh());
                let faults = inc.mesh().fault_set().clone();
                let m = inc.models(frame);
                StateDigest {
                    gen,
                    faults,
                    statuses: m
                        .lab
                        .iter()
                        .map(|(_, s)| format!("{s:?}"))
                        .collect::<Vec<_>>()
                        .join(","),
                    unsafe_set: m.lab.unsafe_set().clone(),
                    mccs: format!("{:?}", m.mccs),
                    comps: format!("{:?}", m.comps),
                }
            }
        }
    }

    /// Resolve a seed-driven churn request into an explicit batch against
    /// the current state: heal one sampled faulty node (if any), inject
    /// one sampled healthy node (if any). Deterministic in
    /// `(seed, current fault configuration)`.
    pub fn resolve_churn_random(&self, seed: u64) -> ChurnRecord {
        let mut rng = SmallRng::seed_from_u64(seed);
        match self {
            ShardModels::D2(inc) => {
                let mesh = inc.mesh();
                let space = mesh.space();
                let (inj, heal) = sample_flip(&mut rng, mesh.fault_set(), space.len());
                ChurnRecord::D2 {
                    injected: inj.into_iter().map(|i| space.coord(i)).collect(),
                    healed: heal.into_iter().map(|i| space.coord(i)).collect(),
                }
            }
            ShardModels::D3(inc) => {
                let mesh = inc.mesh();
                let space = mesh.space();
                let (inj, heal) = sample_flip(&mut rng, mesh.fault_set(), space.len());
                ChurnRecord::D3 {
                    injected: inj.into_iter().map(|i| space.coord(i)).collect(),
                    healed: heal.into_iter().map(|i| space.coord(i)).collect(),
                }
            }
        }
    }
}

/// Sample (inject, heal) index singletons for steady-state churn: heal a
/// uniform faulty node when any exist, inject a healthy node found by
/// random probing with a linear-scan fallback.
fn sample_flip(
    rng: &mut SmallRng,
    faults: &NodeSet,
    nodes: usize,
) -> (Option<usize>, Option<usize>) {
    let heal = if !faults.is_empty() {
        let nth = rng.gen_range(0..faults.len());
        faults.iter().nth(nth)
    } else {
        None
    };
    let inject = if faults.len() < nodes {
        let mut found = None;
        for _ in 0..SAMPLE_ATTEMPTS {
            let i = rng.gen_range(0..nodes);
            if !faults.contains(i) {
                found = Some(i);
                break;
            }
        }
        found.or_else(|| {
            let start = rng.gen_range(0..nodes);
            (0..nodes)
                .map(|k| (start + k) % nodes)
                .find(|&i| !faults.contains(i))
        })
    } else {
        None
    };
    (inject, heal)
}

/// The synchronous state machine of one shard (see the module docs).
#[derive(Debug)]
pub struct ShardCore {
    dir: PathBuf,
    spec: ShardSpec,
    par: Parallelism,
    crash: CrashPoint,
    models: ShardModels,
    wal: Wal,
    gen: u64,
    snapshot_gen: u64,
    ops_applied: u64,
    recoveries: u64,
}

impl ShardCore {
    /// Open (or recover) the shard journaled under `dir`.
    pub fn open(
        dir: &Path,
        spec: ShardSpec,
        par: Parallelism,
        crash: CrashPoint,
    ) -> Result<ShardCore, ServiceError> {
        ShardCore::open_counted(dir, spec, par, crash, 0)
    }

    /// [`open`](ShardCore::open) carrying a recovery counter across
    /// restarts (the supervisor increments it on each respawn).
    pub fn open_counted(
        dir: &Path,
        spec: ShardSpec,
        par: Parallelism,
        crash: CrashPoint,
        recoveries: u64,
    ) -> Result<ShardCore, ServiceError> {
        fs::create_dir_all(dir).map_err(|e| ServiceError::io(dir, e))?;
        // A stale temp file is a snapshot that died before its rename —
        // the old snapshot (if any) is still authoritative.
        let tmp = dir.join(SNAP_TMP);
        match fs::remove_file(&tmp) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(ServiceError::io(&tmp, e)),
        }

        let snap_path = dir.join(SNAP_FILE);
        let (mut models, snap_gen) = match snapshot::load(&snap_path)? {
            Some(s) => {
                check_snapshot_spec(&s, &spec, &snap_path)?;
                let models =
                    ShardModels::from_fault_words(&spec, Some((s.nbits as usize, s.words)), par)
                        .map_err(|detail| ServiceError::Corrupt {
                            path: snap_path.clone(),
                            detail,
                        })?;
                (models, s.gen)
            }
            None => (ShardModels::fresh(&spec, par), 0),
        };

        let wal_path = dir.join(WAL_FILE);
        let buf = match fs::read(&wal_path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(ServiceError::io(&wal_path, e)),
        };
        let (records, clean_len) = decode_records(&buf);
        let mut gen = snap_gen;
        for (seq, payload) in records {
            // Records the snapshot already covers linger when a crash hit
            // between the snapshot rename and the WAL truncation.
            if seq <= snap_gen {
                continue;
            }
            if seq != gen + 1 {
                return Err(ServiceError::Corrupt {
                    path: wal_path,
                    detail: format!("sequence gap: have generation {gen}, next record {seq}"),
                });
            }
            let rec = ChurnRecord::decode(&payload).map_err(|detail| ServiceError::Corrupt {
                path: wal_path.clone(),
                detail,
            })?;
            models
                .try_apply(&rec)
                .map_err(|detail| ServiceError::Corrupt {
                    path: wal_path.clone(),
                    detail: format!("journaled record {seq} does not apply: {detail}"),
                })?;
            gen = seq;
        }
        let wal = Wal::open_at(&wal_path, clean_len as u64, spec.sync)?;
        Ok(ShardCore {
            dir: dir.to_path_buf(),
            spec,
            par,
            crash,
            models,
            wal,
            gen,
            snapshot_gen: snap_gen,
            ops_applied: 0,
            recoveries,
        })
    }

    /// The shard's journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The spec this shard was built from.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// The thread budget model computations run under.
    pub fn par(&self) -> Parallelism {
        self.par
    }

    /// Durable churn generation.
    pub fn gen(&self) -> u64 {
        self.gen
    }

    /// The full comparable state (see [`StateDigest`]).
    pub fn digest(&mut self) -> StateDigest {
        self.models.digest(self.gen)
    }

    /// Serve one request.
    pub fn handle(&mut self, req: &Request) -> Result<Response, ServiceError> {
        match req {
            Request::Route2 { s, d, seed } => self.route2(*s, *d, *seed),
            Request::Route3 { s, d, seed } => self.route3(*s, *d, *seed),
            Request::RouteRandom { seed, min_dist } => self.route_random(*seed, *min_dist),
            Request::Query2(c) => self.query2(*c),
            Request::Query3(c) => self.query3(*c),
            Request::QueryRandom { seed } => self.query_random(*seed),
            Request::Churn2 { injected, healed } => self.churn(ChurnRecord::D2 {
                injected: injected.clone(),
                healed: healed.clone(),
            }),
            Request::Churn3 { injected, healed } => self.churn(ChurnRecord::D3 {
                injected: injected.clone(),
                healed: healed.clone(),
            }),
            Request::ChurnRandom { seed } => {
                let rec = self.models.resolve_churn_random(*seed);
                self.churn(rec)
            }
            Request::Snapshot => {
                let gen = self.snapshot_now()?;
                Ok(Response::Snapshot { gen })
            }
            Request::Stats => Ok(Response::Stats(self.stats())),
            Request::Panic => panic!("injected shard panic (supervision test)"),
        }
    }

    /// Observable counters.
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            gen: self.gen,
            snapshot_gen: self.snapshot_gen,
            ops_applied: self.ops_applied,
            wal_bytes: self.wal.len_bytes(),
            faults: self.models.fault_count(),
            nodes: self.models.node_count(),
            recoveries: self.recoveries,
        }
    }

    /// Write a snapshot covering the current generation and truncate the
    /// WAL. Returns the covered generation.
    pub fn snapshot_now(&mut self) -> Result<u64, ServiceError> {
        let (nbits, words) = self.models.fault_words();
        let snap = Snapshot {
            dim: self.spec.geom.dim(),
            wrap: self.spec.geom.wraps(),
            border: self.spec.border,
            extents: self.spec.geom.extents(),
            gen: self.gen,
            nbits: nbits as u64,
            words,
        };
        snapshot::write(
            &self.dir.join(SNAP_FILE),
            &self.dir.join(SNAP_TMP),
            &snap,
            self.spec.sync,
            &self.crash,
        )?;
        self.snapshot_gen = self.gen;
        self.wal.truncate_all(&self.crash)?;
        Ok(self.gen)
    }

    /// The write-ahead churn path: check → journal → apply → maybe
    /// snapshot.
    fn churn(&mut self, rec: ChurnRecord) -> Result<Response, ServiceError> {
        self.models
            .check(&rec)
            .map_err(|reason| ServiceError::Rejected { reason })?;
        let seq = self.gen + 1;
        self.wal.append(seq, &rec.encode(), &self.crash)?;
        self.models.apply(&rec);
        self.gen = seq;
        self.ops_applied += 1;
        if self.spec.snapshot_every > 0 && self.gen - self.snapshot_gen >= self.spec.snapshot_every
        {
            self.snapshot_now()?;
        }
        Ok(Response::Churn { gen: self.gen })
    }

    fn route2(&mut self, s: C2, d: C2, seed: u64) -> Result<Response, ServiceError> {
        let ShardModels::D2(inc) = &mut self.models else {
            return Err(wrong_dim(2, self.models.dim()));
        };
        let space = inc.mesh().space();
        if space.index_checked(s).is_none() || space.index_checked(d).is_none() {
            return Err(ServiceError::Rejected {
                reason: format!("route endpoints {s:?} -> {d:?} outside the mesh"),
            });
        }
        let frame = Frame2::for_pair(inc.mesh(), s, d);
        let (cs, cd) = (frame.to_canon(s), frame.to_canon(d));
        let m = inc.models(frame);
        let mut policy = Policy::random(seed);
        let out = Router2::new(m.lab, m.mccs).route(cs, cd, &mut policy);
        Ok(Response::Route {
            delivered: out.delivered(),
            hops: out.path.hops(),
        })
    }

    fn route3(&mut self, s: C3, d: C3, seed: u64) -> Result<Response, ServiceError> {
        let ShardModels::D3(inc) = &mut self.models else {
            return Err(wrong_dim(3, self.models.dim()));
        };
        let space = inc.mesh().space();
        if space.index_checked(s).is_none() || space.index_checked(d).is_none() {
            return Err(ServiceError::Rejected {
                reason: format!("route endpoints {s:?} -> {d:?} outside the mesh"),
            });
        }
        let frame = Frame3::for_pair(inc.mesh(), s, d);
        let (cs, cd) = (frame.to_canon(s), frame.to_canon(d));
        let m = inc.models(frame);
        let mut policy = Policy::random(seed);
        let out = Router3::new(m.lab, m.mccs).route(cs, cd, &mut policy);
        Ok(Response::Route {
            delivered: out.delivered(),
            hops: out.path.hops(),
        })
    }

    fn route_random(&mut self, seed: u64, min_dist: u32) -> Result<Response, ServiceError> {
        let mut rng = SmallRng::seed_from_u64(seed);
        match &self.models {
            ShardModels::D2(inc) => {
                let mesh = inc.mesh();
                let space = mesh.space();
                let pair = sample_pair(&mut rng, space.len(), |i, j| {
                    let (a, b) = (space.coord(i), space.coord(j));
                    mesh.is_healthy(a) && mesh.is_healthy(b) && space.dist(a, b) >= min_dist.max(1)
                });
                let Some((i, j)) = pair else {
                    return Err(ServiceError::Rejected {
                        reason: "no healthy pair satisfies the separation requirement".into(),
                    });
                };
                let (s, d) = (space.coord(i), space.coord(j));
                self.route2(s, d, seed)
            }
            ShardModels::D3(inc) => {
                let mesh = inc.mesh();
                let space = mesh.space();
                let pair = sample_pair(&mut rng, space.len(), |i, j| {
                    let (a, b) = (space.coord(i), space.coord(j));
                    mesh.is_healthy(a) && mesh.is_healthy(b) && space.dist(a, b) >= min_dist.max(1)
                });
                let Some((i, j)) = pair else {
                    return Err(ServiceError::Rejected {
                        reason: "no healthy pair satisfies the separation requirement".into(),
                    });
                };
                let (s, d) = (space.coord(i), space.coord(j));
                self.route3(s, d, seed)
            }
        }
    }

    fn query2(&mut self, c: C2) -> Result<Response, ServiceError> {
        let ShardModels::D2(inc) = &mut self.models else {
            return Err(wrong_dim(2, self.models.dim()));
        };
        let space = inc.mesh().space();
        let Some(i) = space.index_checked(c) else {
            return Err(ServiceError::Rejected {
                reason: format!("query node {c:?} outside the mesh"),
            });
        };
        let frame = Frame2::identity(inc.mesh());
        let m = inc.models(frame);
        Ok(Response::Region {
            status: format!("{:?}", m.lab.status(c)),
            in_unsafe: m.lab.unsafe_set().contains(i),
            mccs: m.mccs.len(),
        })
    }

    fn query3(&mut self, c: C3) -> Result<Response, ServiceError> {
        let ShardModels::D3(inc) = &mut self.models else {
            return Err(wrong_dim(3, self.models.dim()));
        };
        let space = inc.mesh().space();
        let Some(i) = space.index_checked(c) else {
            return Err(ServiceError::Rejected {
                reason: format!("query node {c:?} outside the mesh"),
            });
        };
        let frame = Frame3::identity(inc.mesh());
        let m = inc.models(frame);
        Ok(Response::Region {
            status: format!("{:?}", m.lab.status(c)),
            in_unsafe: m.lab.unsafe_set().contains(i),
            mccs: m.mccs.len(),
        })
    }

    fn query_random(&mut self, seed: u64) -> Result<Response, ServiceError> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let i = rng.gen_range(0..self.models.node_count());
        match &self.models {
            ShardModels::D2(inc) => {
                let c = inc.mesh().space().coord(i);
                self.query2(c)
            }
            ShardModels::D3(inc) => {
                let c = inc.mesh().space().coord(i);
                self.query3(c)
            }
        }
    }
}

fn wrong_dim(req: u8, shard: u8) -> ServiceError {
    ServiceError::Rejected {
        reason: format!("request is {req}-D but shard is {shard}-D"),
    }
}

/// Sample an index pair satisfying `ok` by bounded random probing.
fn sample_pair(
    rng: &mut SmallRng,
    nodes: usize,
    ok: impl Fn(usize, usize) -> bool,
) -> Option<(usize, usize)> {
    for _ in 0..SAMPLE_ATTEMPTS * 4 {
        let i = rng.gen_range(0..nodes);
        let j = rng.gen_range(0..nodes);
        if i != j && ok(i, j) {
            return Some((i, j));
        }
    }
    None
}

fn check_snapshot_spec(snap: &Snapshot, spec: &ShardSpec, path: &Path) -> Result<(), ServiceError> {
    let want = (
        spec.geom.dim(),
        spec.geom.wraps(),
        spec.border,
        spec.geom.extents(),
    );
    let got = (snap.dim, snap.wrap, snap.border, snap.extents);
    if want != got {
        return Err(ServiceError::Corrupt {
            path: path.to_path_buf(),
            detail: format!("snapshot geometry {got:?} does not match shard spec {want:?}"),
        });
    }
    Ok(())
}
