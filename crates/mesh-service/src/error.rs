//! The service error vocabulary.
//!
//! Errors split into three families the caller treats differently:
//! *shedding* ([`ServiceError::Overloaded`], [`ServiceError::Deadline`]) —
//! transient, retry with backoff; *rejection*
//! ([`ServiceError::Rejected`]) — the request itself is malformed and
//! retrying is pointless; and *infrastructure*
//! ([`ServiceError::Io`] / [`ServiceError::Corrupt`] /
//! [`ServiceError::Timeout`] / [`ServiceError::ShardDown`] /
//! [`ServiceError::ShardPanicked`]) — the shard or its journal is in
//! trouble. Every I/O and corruption error names the offending path.

use std::path::PathBuf;

use crate::crash::CrashSite;

/// Anything a [`MeshService`](crate::service::MeshService) call or a shard
/// recovery can fail with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// Shed: the shard's admission queue is full.
    Overloaded {
        /// Queue depth at the moment the request was refused.
        depth: usize,
    },
    /// Shed: the request would wait longer than its deadline.
    Deadline {
        /// Predicted queueing delay, in nanoseconds.
        wait_ns: u64,
    },
    /// The request is malformed (bad churn batch, out-of-space coordinate,
    /// wrong dimensionality for the shard) and was refused without being
    /// applied — the shard stays up.
    Rejected {
        /// Human-readable reason, preserving the fault-model
        /// [`ChurnError`](fault_model::ChurnError) message.
        reason: String,
    },
    /// No reply within the caller's timeout.
    Timeout,
    /// The shard's request channel is gone and could not be respawned.
    ShardDown,
    /// The shard panicked while handling this request; it has been
    /// restarted from its journal and the request was *not* applied.
    ShardPanicked,
    /// The shard index does not exist.
    UnknownShard {
        /// The offending shard index.
        shard: usize,
    },
    /// An I/O operation on the journal failed.
    Io {
        /// The file or directory the operation touched.
        path: PathBuf,
        /// The OS error, stringified (keeps the type `Clone + PartialEq`).
        detail: String,
    },
    /// The journal is structurally damaged beyond what torn-tail recovery
    /// handles (sequence gap, geometry mismatch, invalid replayed op).
    Corrupt {
        /// The damaged file.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// A [`CrashPoint`](crate::crash::CrashPoint) fired — only the fault
    /// injection harness ever observes this.
    Injected(CrashSite),
}

impl ServiceError {
    /// Wrap an `std::io::Error` with the path it hit.
    pub fn io(path: impl Into<PathBuf>, e: std::io::Error) -> ServiceError {
        ServiceError::Io {
            path: path.into(),
            detail: e.to_string(),
        }
    }

    /// True for the two shedding variants — the errors worth retrying.
    pub fn is_shed(&self) -> bool {
        matches!(
            self,
            ServiceError::Overloaded { .. } | ServiceError::Deadline { .. }
        )
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded { depth } => {
                write!(f, "overloaded: admission queue full at depth {depth}")
            }
            ServiceError::Deadline { wait_ns } => {
                write!(f, "deadline: predicted wait {wait_ns}ns exceeds deadline")
            }
            ServiceError::Rejected { reason } => write!(f, "rejected: {reason}"),
            ServiceError::Timeout => f.write_str("timed out waiting for shard reply"),
            ServiceError::ShardDown => f.write_str("shard is down"),
            ServiceError::ShardPanicked => {
                f.write_str("shard panicked and was restarted from its journal")
            }
            ServiceError::UnknownShard { shard } => write!(f, "unknown shard {shard}"),
            ServiceError::Io { path, detail } => {
                write!(f, "I/O error on {}: {detail}", path.display())
            }
            ServiceError::Corrupt { path, detail } => {
                write!(f, "corrupt journal {}: {detail}", path.display())
            }
            ServiceError::Injected(site) => write!(f, "injected crash at {site}"),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_errors_name_the_path() {
        let e = ServiceError::io(
            "/tmp/shard-0/wal.log",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(e.to_string().contains("/tmp/shard-0/wal.log"));
        assert!(!e.is_shed());
    }

    #[test]
    fn shed_classification() {
        assert!(ServiceError::Overloaded { depth: 4 }.is_shed());
        assert!(ServiceError::Deadline { wait_ns: 10 }.is_shed());
        assert!(!ServiceError::Timeout.is_shed());
    }
}
