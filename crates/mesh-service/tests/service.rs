//! Service-level behaviour: supervision (panicked shards restart from the
//! journal), overload shedding with typed errors and a deterministic shed
//! sequence, restart-resume over the same root, and the retry helper.

use std::fs;
use std::time::Duration;

use mesh_service::prelude::*;
use mesh_service::shard::ShardStats;
use mesh_topo::coord::c2;

fn spec_8x8() -> ShardSpec {
    ShardSpec::new(
        Geometry::M2 {
            width: 8,
            height: 8,
            wrap: false,
        },
        4,
    )
}

fn stats(svc: &MeshService, shard: usize) -> ShardStats {
    match svc.call(shard, Request::Stats, 0) {
        Ok(Response::Stats(s)) => s,
        other => panic!("stats: {other:?}"),
    }
}

#[test]
fn panicked_shard_recovers_from_its_journal() {
    let root = TempDir::new("supervise");
    let svc = MeshService::start(ServiceConfig::new(root.path()), &[spec_8x8()]).unwrap();

    let r = svc.call(
        0,
        Request::Churn2 {
            injected: vec![c2(3, 3), c2(5, 5)],
            healed: vec![],
        },
        0,
    );
    assert_eq!(r, Ok(Response::Churn { gen: 1 }));

    // Kill the shard mid-flight; the caller sees a typed error...
    assert_eq!(
        svc.call(0, Request::Panic, 0),
        Err(ServiceError::ShardPanicked)
    );

    // ...and the next request sees the journaled state, not a blank shard.
    let s = stats(&svc, 0);
    assert_eq!((s.gen, s.faults, s.recoveries), (1, 2, 1));
    match svc.call(0, Request::Query2(c2(3, 3)), 0) {
        Ok(Response::Region { status, .. }) => assert!(status.contains("faulty"), "{status}"),
        other => panic!("query: {other:?}"),
    }

    // Supervision is not one-shot.
    assert_eq!(
        svc.call(0, Request::Panic, 0),
        Err(ServiceError::ShardPanicked)
    );
    assert_eq!(stats(&svc, 0).recoveries, 2);

    assert_eq!(
        svc.call(9, Request::Stats, 0),
        Err(ServiceError::UnknownShard { shard: 9 })
    );
}

/// A burst beyond the queue bound sheds with `Overloaded`; the admit/shed
/// sequence is a pure function of the schedule, so two identical services
/// produce it byte-for-byte.
#[test]
fn overload_sheds_deterministically() {
    let run = |tag: &str| -> Vec<String> {
        let root = TempDir::new(tag);
        let mut cfg = ServiceConfig::new(root.path());
        cfg.admission.queue_cap = 4;
        cfg.admission.deadline_ns = u64::MAX; // isolate the depth bound
        let svc = MeshService::start(cfg, &[spec_8x8()]).unwrap();
        (0..12u64)
            .map(|i| {
                let r = svc.call(
                    0,
                    Request::Route2 {
                        s: c2(0, 0),
                        d: c2(7, 7),
                        seed: i,
                    },
                    0, // every request arrives at the same instant
                );
                match r {
                    Ok(Response::Route { delivered, hops }) => format!("ok:{delivered}:{hops}"),
                    Err(ServiceError::Overloaded { depth }) => format!("overloaded:{depth}"),
                    other => panic!("burst: {other:?}"),
                }
            })
            .collect()
    };
    let a = run("burst-a");
    assert_eq!(a.iter().filter(|s| s.starts_with("ok")).count(), 4);
    assert_eq!(a.iter().filter(|s| s.starts_with("overloaded")).count(), 8);
    assert_eq!(a, run("burst-b"), "shed sequence is not deterministic");
}

/// With a tight deadline and a draining queue, the typed error switches to
/// `Deadline` — the request would have waited too long, not queued too deep.
#[test]
fn deadline_shedding_yields_typed_waits() {
    let root = TempDir::new("deadline");
    let mut cfg = ServiceConfig::new(root.path());
    cfg.admission.queue_cap = 1024;
    cfg.admission.deadline_ns = 1_000_000; // 1 ms
    cfg.admission.cost_ns = [600_000, 600_000, 600_000];
    let svc = MeshService::start(cfg, &[spec_8x8()]).unwrap();

    let outcome = |r: Result<Response, ServiceError>| match r {
        Ok(_) => "ok",
        Err(e) if e.is_shed() => "shed",
        other => panic!("deadline burst: {other:?}"),
    };
    let burst: Vec<_> = (0..4u64)
        .map(|i| outcome(svc.call(0, Request::QueryRandom { seed: i }, 0)))
        .collect();
    // arrivals at t=0 with 600 µs service: waits 0, 600 µs, 1.2 ms, 1.2 ms.
    assert_eq!(burst, ["ok", "ok", "shed", "shed"]);
    assert_eq!(
        svc.call(0, Request::QueryRandom { seed: 9 }, 0),
        Err(ServiceError::Deadline { wait_ns: 1_200_000 })
    );
    // Later arrivals find the queue drained.
    assert_eq!(
        outcome(svc.call(0, Request::QueryRandom { seed: 5 }, 2_000_000)),
        "ok"
    );
}

#[test]
fn retry_helper_bounds_attempts_and_passes_successes_through() {
    let root = TempDir::new("retry");
    let mut cfg = ServiceConfig::new(root.path());
    cfg.admission.queue_cap = 1;
    cfg.admission.deadline_ns = u64::MAX;
    let svc = MeshService::start(cfg, &[spec_8x8()]).unwrap();

    // Fill the single-slot queue at t=0.
    assert!(svc.call(0, Request::QueryRandom { seed: 1 }, 0).is_ok());
    // Virtual time never advances across retries, so every attempt sheds.
    let r = svc.call_with_retry(
        0,
        Request::QueryRandom { seed: 2 },
        0,
        3,
        Duration::from_millis(1),
    );
    assert_eq!(r, Err(ServiceError::Overloaded { depth: 1 }));
    // A request that admits succeeds on the first attempt.
    let r = svc.call_with_retry(
        0,
        Request::QueryRandom { seed: 3 },
        1_000_000_000,
        3,
        Duration::from_millis(1),
    );
    assert!(r.is_ok(), "{r:?}");
}

#[test]
fn shutdown_then_restart_resumes_from_the_journal() {
    let root = TempDir::new("resume");
    {
        let svc = MeshService::start(ServiceConfig::new(root.path()), &[spec_8x8()]).unwrap();
        for seed in 0..5u64 {
            assert!(svc.call(0, Request::ChurnRandom { seed }, 0).is_ok());
        }
        assert_eq!(stats(&svc, 0).gen, 5);
        svc.shutdown();
    }
    let svc = MeshService::start(ServiceConfig::new(root.path()), &[spec_8x8()]).unwrap();
    let s = stats(&svc, 0);
    assert_eq!(s.gen, 5);
    // snapshot_every = 4 → one auto-snapshot happened; the WAL holds the rest.
    assert_eq!(s.snapshot_gen, 4);
    assert!(svc.call(0, Request::ChurnRandom { seed: 99 }, 0).is_ok());
}

#[test]
fn startup_surfaces_snapshot_corruption() {
    let root = TempDir::new("corrupt");
    {
        let svc = MeshService::start(ServiceConfig::new(root.path()), &[spec_8x8()]).unwrap();
        for seed in 0..4u64 {
            assert!(svc.call(0, Request::ChurnRandom { seed }, 0).is_ok());
        }
        svc.shutdown();
    }
    let snap = root.path().join("shard-0000").join("snapshot.bin");
    fs::write(&snap, b"not a snapshot").unwrap();
    match MeshService::start(ServiceConfig::new(root.path()), &[spec_8x8()]) {
        Err(ServiceError::Corrupt { path, .. }) => assert_eq!(path, snap),
        Err(other) => panic!("start over damaged snapshot: {other:?}"),
        Ok(_) => panic!("start over damaged snapshot succeeded"),
    }
}
