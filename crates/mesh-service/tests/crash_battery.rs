//! The tentpole acceptance battery: kill a shard at **every** journal
//! crash site and at **every** torn-tail byte offset, recover it, and pin
//! the recovered state bit-for-bit (statuses, unsafe sets, MCC shapes,
//! generation) against an uninterrupted reference run.
//!
//! The trace mixes explicit and seeded-random churn with explicit
//! snapshots plus auto-snapshot cadence, so the site enumeration covers
//! append, snapshot-tmp, snapshot-rename, and WAL-truncate boundaries in
//! realistic interleavings. The thread budget honours `MCC_THREADS`, so
//! the CI matrix runs this battery under both serial and parallel model
//! rebuilds.

use std::collections::BTreeMap;
use std::fs;

use mesh_service::prelude::*;
use mesh_service::shard::{ShardCore, WAL_FILE};
use mesh_service::wal::decode_records;
use mesh_service::StateDigest;
use mesh_topo::coord::{c2, c3};
use mesh_topo::par::Parallelism;

fn par() -> Parallelism {
    Parallelism::auto().from_env()
}

/// Run `trace` uninterrupted in a fresh dir, returning the digest at every
/// generation the run passes through (gen 0 included).
fn reference_digests(
    tag: &str,
    spec: ShardSpec,
    trace: &[Request],
) -> (TempDir, BTreeMap<u64, StateDigest>) {
    let dir = TempDir::new(tag);
    let mut core = ShardCore::open(dir.path(), spec, par(), CrashPoint::none()).expect("open");
    let mut digests = BTreeMap::new();
    digests.insert(core.gen(), core.digest());
    for req in trace {
        core.handle(req).expect("reference op");
        digests.insert(core.gen(), core.digest());
    }
    (dir, digests)
}

/// Kill at every enumerated crash site; recovery must land exactly on a
/// reference generation with an identical digest.
fn run_site_battery(tag: &str, spec: ShardSpec, trace: &[Request]) {
    let (_ref_dir, reference) = reference_digests(&format!("{tag}-ref"), spec, trace);

    // First pass: count the sites an uninterrupted run passes through.
    let counter = CrashPoint::counting();
    {
        let dir = TempDir::new(&format!("{tag}-count"));
        let mut core = ShardCore::open(dir.path(), spec, par(), counter.clone()).expect("open");
        for req in trace {
            core.handle(req).expect("counting op");
        }
    }
    let sites = counter.sites_seen();
    assert!(sites >= 6, "trace passes only {sites} crash sites");

    for k in 0..sites {
        let dir = TempDir::new(&format!("{tag}-kill{k}"));
        let crash = CrashPoint::after(k);
        let mut core = ShardCore::open(dir.path(), spec, par(), crash.clone()).expect("open");
        let mut fired = None;
        for req in trace {
            match core.handle(req) {
                Ok(_) => {}
                Err(ServiceError::Injected(site)) => {
                    fired = Some(site);
                    break;
                }
                Err(e) => panic!("site {k}: unexpected error {e}"),
            }
        }
        let site = fired.unwrap_or_else(|| panic!("site {k} never fired in {sites}-site trace"));
        drop(core);

        // The simulated process is dead; recover from the journal alone.
        let mut recovered =
            ShardCore::open(dir.path(), spec, par(), CrashPoint::none()).expect("recover");
        let gen = recovered.gen();
        let want = reference.get(&gen).unwrap_or_else(|| {
            panic!("site {k} ({site}): recovered to generation {gen} the reference never saw")
        });
        assert_eq!(
            &recovered.digest(),
            want,
            "site {k} ({site}): recovered state diverges at generation {gen}"
        );
        // The recovered incarnation must keep working.
        recovered
            .handle(&Request::ChurnRandom { seed: 0xF00D + k })
            .expect("post-recovery churn");
    }
}

#[test]
fn kill_at_every_site_2d() {
    let spec = ShardSpec::new(
        Geometry::M2 {
            width: 8,
            height: 6,
            wrap: false,
        },
        3, // auto-snapshot every 3 churn ops → snapshot sites mid-trace
    );
    let mut trace = vec![Request::Churn2 {
        injected: vec![c2(2, 2), c2(5, 1)],
        healed: vec![],
    }];
    for seed in 0..7u64 {
        trace.push(Request::ChurnRandom {
            seed: 0xC0FFEE + seed,
        });
    }
    trace.insert(4, Request::Snapshot);
    trace.push(Request::Snapshot);
    run_site_battery("battery2", spec, &trace);
}

#[test]
fn kill_at_every_site_3d_torus() {
    let spec = ShardSpec::new(
        Geometry::M3 {
            nx: 4,
            ny: 4,
            nz: 3,
            wrap: true,
        },
        2,
    );
    let mut trace = vec![Request::Churn3 {
        injected: vec![c3(1, 1, 1), c3(2, 3, 0)],
        healed: vec![],
    }];
    for seed in 0..5u64 {
        trace.push(Request::ChurnRandom {
            seed: 0xBEEF + seed,
        });
    }
    trace.push(Request::Snapshot);
    run_site_battery("battery3", spec, &trace);
}

/// Truncate the final WAL at **every** byte offset; recovery must replay
/// exactly the fully contained records — never crash, never see a phantom.
#[test]
fn torn_tail_at_every_byte_offset() {
    let spec = ShardSpec::new(
        Geometry::M2 {
            width: 6,
            height: 6,
            wrap: false,
        },
        0, // never snapshot: the whole history lives in the WAL
    );
    let mut trace = vec![Request::Churn2 {
        injected: vec![c2(1, 1), c2(4, 4), c2(2, 3)],
        healed: vec![],
    }];
    for seed in 0..9u64 {
        trace.push(Request::ChurnRandom {
            seed: 0xABBA + seed,
        });
    }
    let (ref_dir, reference) = reference_digests("torn-ref", spec, &trace);

    let wal = fs::read(ref_dir.path().join(WAL_FILE)).expect("read reference WAL");
    assert!(wal.len() > 200, "WAL too short to be interesting");

    for cut in 0..=wal.len() {
        let dir = TempDir::new(&format!("torn{cut}"));
        fs::create_dir_all(dir.path()).expect("mk shard dir");
        fs::write(dir.path().join(WAL_FILE), &wal[..cut]).expect("write torn WAL");

        let mut recovered =
            ShardCore::open(dir.path(), spec, par(), CrashPoint::none()).expect("recover");
        let (contained, _) = decode_records(&wal[..cut]);
        assert_eq!(
            recovered.gen(),
            contained.len() as u64,
            "cut at byte {cut}: wrong committed prefix"
        );
        let want = &reference[&recovered.gen()];
        assert_eq!(
            &recovered.digest(),
            want,
            "cut at byte {cut}: recovered state diverges"
        );
    }
}
