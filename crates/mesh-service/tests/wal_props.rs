//! Property battery for the WAL record codec (the durability substrate of
//! the crash battery):
//!
//! * encode→decode is the identity for arbitrary op batches,
//! * any single flipped byte is caught by the checksum — the decoded
//!   stream is exactly the records before the damaged one, never a
//!   phantom,
//! * truncation at **every** byte offset yields the clean prefix of fully
//!   contained records — never a crash, never a record that wasn't
//!   committed.

use mesh_service::ops::ChurnRecord;
use mesh_service::wal::{decode_records, encode_record};
use mesh_topo::coord::c2;
use proptest::collection::vec;
use proptest::prelude::*;

/// A churn batch as raw coordinate pairs: (injected, healed).
type RawBatch = (Vec<(i32, i32)>, Vec<(i32, i32)>);
/// One encoded record: (seq, payload, end offset in the stream).
type EncodedRecord = (u64, Vec<u8>, usize);

/// Build a WAL byte stream from encoded churn batches; returns the stream
/// and the per-record `(seq, payload)` list with record end offsets.
fn build_stream(batches: &[RawBatch]) -> (Vec<u8>, Vec<EncodedRecord>) {
    let mut buf = Vec::new();
    let mut records = Vec::new();
    for (i, (inj, heal)) in batches.iter().enumerate() {
        let rec = ChurnRecord::D2 {
            injected: inj.iter().map(|&(x, y)| c2(x, y)).collect(),
            healed: heal.iter().map(|&(x, y)| c2(x, y)).collect(),
        };
        let seq = i as u64 + 1;
        let payload = rec.encode();
        buf.extend_from_slice(&encode_record(seq, &payload));
        records.push((seq, payload, buf.len()));
    }
    (buf, records)
}

proptest! {
    #[test]
    fn encode_decode_is_identity(
        batches in vec((vec((0i32..64, 0i32..64), 0..6), vec((0i32..64, 0i32..64), 0..6)), 1..8),
    ) {
        let (buf, records) = build_stream(&batches);
        let (decoded, clean) = decode_records(&buf);
        prop_assert_eq!(clean, buf.len());
        prop_assert_eq!(decoded.len(), records.len());
        for ((seq, payload), (want_seq, want_payload, _)) in decoded.iter().zip(&records) {
            prop_assert_eq!(seq, want_seq);
            prop_assert_eq!(payload, want_payload);
            // The payload itself round-trips through the op codec.
            let rec = ChurnRecord::decode(payload).expect("decodable payload");
            prop_assert_eq!(rec.encode(), payload.clone());
        }
    }

    #[test]
    fn single_flipped_byte_is_caught(
        batches in vec((vec((0i32..64, 0i32..64), 0..4), vec((0i32..64, 0i32..64), 0..4)), 1..6),
        flip_at in any::<u64>(),
        flip_bit in 0u32..8,
    ) {
        let (buf, records) = build_stream(&batches);
        let pos = (flip_at % buf.len() as u64) as usize;
        let mut damaged = buf.clone();
        damaged[pos] ^= 1 << flip_bit;
        // The record containing the flipped byte — everything before it
        // must survive, it and everything after must be gone.
        let k = records.iter().filter(|(_, _, end)| *end <= pos).count();
        let (decoded, clean) = decode_records(&damaged);
        prop_assert_eq!(decoded.len(), k, "flip at byte {} kept a damaged record", pos);
        for ((seq, payload), (want_seq, want_payload, _)) in decoded.iter().zip(&records) {
            prop_assert_eq!(seq, want_seq);
            prop_assert_eq!(payload, want_payload);
        }
        prop_assert_eq!(clean, records.get(k.wrapping_sub(1)).map_or(0, |(_, _, end)| *end));
    }

    #[test]
    fn truncation_at_every_offset_is_a_clean_prefix(
        batches in vec((vec((0i32..64, 0i32..64), 0..4), vec((0i32..64, 0i32..64), 0..4)), 1..6),
    ) {
        let (buf, records) = build_stream(&batches);
        for t in 0..=buf.len() {
            let (decoded, clean) = decode_records(&buf[..t]);
            let k = records.iter().filter(|(_, _, end)| *end <= t).count();
            prop_assert_eq!(decoded.len(), k, "truncation at {} invented or lost a record", t);
            prop_assert_eq!(clean, records.get(k.wrapping_sub(1)).map_or(0, |(_, _, end)| *end));
            for ((seq, payload), (want_seq, want_payload, _)) in decoded.iter().zip(&records) {
                prop_assert_eq!(seq, want_seq);
                prop_assert_eq!(payload, want_payload);
            }
        }
    }
}
