//! Case execution: configuration, RNG, and the reject/fail bookkeeping.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Per-`proptest!` configuration (subset of the real crate's fields).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run.
    pub cases: u32,
    /// Maximum rejected cases tolerated before giving up on assumptions.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not succeed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!`; try another input.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// Deterministic RNG handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    pub(crate) rng: SmallRng,
}

impl TestRng {
    fn for_case(test_name: &str, case: u64) -> Self {
        // Stable per-test seed: FNV-1a over the name, mixed with the case
        // index, so every test sees its own reproducible stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            rng: SmallRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Raw 64 random bits (used by `any`).
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// Runs cases until the configured count passes, a case fails, or the
/// reject budget is exhausted.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Create a runner for one `proptest!` block.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Execute `case` repeatedly; `Err(message)` describes the first failure.
    pub fn run<F>(&mut self, test_name: &str, mut case: F) -> Result<(), String>
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        let mut attempt: u64 = 0;
        while passed < self.config.cases {
            let mut rng = TestRng::for_case(test_name, attempt);
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected >= self.config.max_global_rejects {
                        // Assumptions were too strong; accept what ran.
                        break;
                    }
                }
                Err(TestCaseError::Fail(message)) => {
                    return Err(format!(
                        "proptest case failed (test `{test_name}`, attempt {attempt}, \
                         {passed} cases passed): {message}"
                    ));
                }
            }
            attempt += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_counts_cases() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(10));
        let mut calls = 0;
        runner
            .run("counts", |_| {
                calls += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(calls, 10);
    }

    #[test]
    fn runner_reports_failure() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(10));
        let err = runner
            .run("fails", |_| Err(TestCaseError::fail("boom")))
            .unwrap_err();
        assert!(err.contains("boom"));
    }

    #[test]
    fn rejects_do_not_count_as_cases() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(5));
        let mut passed = 0;
        let mut toggle = false;
        runner
            .run("rejects", |_| {
                toggle = !toggle;
                if toggle {
                    Err(TestCaseError::Reject)
                } else {
                    passed += 1;
                    Ok(())
                }
            })
            .unwrap();
        assert_eq!(passed, 5);
    }

    #[test]
    fn deterministic_per_name() {
        let a = TestRng::for_case("same", 3).next_u64();
        let b = TestRng::for_case("same", 3).next_u64();
        let c = TestRng::for_case("other", 3).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
