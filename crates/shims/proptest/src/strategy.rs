//! Value-generation strategies: ranges, tuples, `prop_map`, `Just`, `any`.

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::Range;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a pure function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy yielding one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the whole domain of `T`.
#[derive(Clone, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}
