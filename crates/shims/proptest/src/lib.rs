//! Offline stand-in for `proptest`.
//!
//! Property tests in this workspace use a small, fixed API surface: the
//! [`proptest!`] macro over `name in strategy` parameters, range and tuple
//! strategies, [`collection::vec`], [`strategy::Strategy::prop_map`], and the
//! `prop_assert*` / `prop_assume!` macros. This crate implements exactly
//! that, with deterministic per-test seeding (derived from the test name) so
//! failures are reproducible run to run. There is no shrinking: a failing
//! case reports its inputs via the assertion message instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, len_range)` — a vector whose length is drawn from
    /// `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.rng.gen_range(self.size.start..self.size.end)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub use test_runner::ProptestConfig;

/// Define property tests.
///
/// Supports an optional leading `#![proptest_config(expr)]` and any number
/// of `fn name(param in strategy, ...) { body }` items, each carrying its
/// own attributes (typically `#[test]` and doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($param:ident in $strategy:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            let outcome = runner.run(stringify!($name), |__rng| {
                $(let $param = $crate::strategy::Strategy::sample(&($strategy), __rng);)*
                let mut __case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
            if let ::std::result::Result::Err(message) = outcome {
                panic!("{}", message);
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Reject the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assert_eq failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assert_eq failed: {:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assert_ne failed: both {:?}", l);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assert_ne failed: both {:?}: {}", l, format!($($fmt)+));
    }};
}
