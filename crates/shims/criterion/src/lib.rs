//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Criterion::bench_function`], [`Bencher::iter`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — on top of
//! `std::time::Instant`. Timing is a plain mean over `sample_size`
//! iterations after one warm-up batch: good enough to compare kernels
//! locally, with zero dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of one parameterized benchmark: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, keeping its return value alive via [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up call to populate caches and lazy statics.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples;
    }
}

fn run_one(full_name: &str, samples: u64, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let mean = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.elapsed / b.iters as u32
    };
    println!(
        "bench: {full_name:<60} {mean:>12.2?}/iter ({} iters)",
        b.iters
    );
}

/// A named group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Benchmark `f` against a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmark a closure with no extra input.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size, |b| f(b));
        self
    }

    /// Finish the group (drop-equivalent, kept for API parity).
    pub fn finish(self) {}
}

/// The benchmark driver handed to every target function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmark a standalone closure.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{name}"), 10, |b| f(b));
        self
    }
}

/// Declare a group-runner function invoking each benchmark target in turn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        let mut calls = 0u64;
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        // 1 warm-up + 3 timed iterations.
        assert_eq!(calls, 4);
    }
}
