//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! tiny, deterministic implementation of exactly the API surface the MCC
//! reproduction uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom`]. The generator is xoshiro256++ seeded via SplitMix64,
//! so streams are reproducible from a `u64` seed — the only property the
//! workloads rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators reproducible from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose whole stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64_unit(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn f64_unit(word: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64_unit(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64_unit(rng.next_u64()) as f32
    }
}

/// Ranges usable with [`Rng::gen_range`].
///
/// Implemented generically for `Range<T>` / `RangeInclusive<T>` over every
/// [`SampleUniform`] element type, so `T` unifies with the range's element
/// type during inference exactly as it does with the real crate.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Element types uniformly samplable from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample from `[low, high)`.
    fn sample_half_open<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Sample from `[low, high]`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let offset = (u128::sample(rng) % span) as i128;
                (low as i128 + offset) as $t
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let offset = (u128::sample(rng) % span) as i128;
                (low as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + f64_unit(rng.next_u64()) * (high - low)
    }
    fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range");
        low + f64_unit(rng.next_u64()) * (high - low)
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly choose one element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-3..17);
            assert!((-3..17).contains(&v));
            let w: usize = rng.gen_range(0..=4);
            assert!(w <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
