//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface the workspace touches is provided: [`Mutex`] and
//! [`RwLock`] with panic-free (`poison`-swallowing) guards, matching
//! parking_lot's `lock()`-returns-guard signatures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutably borrow the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader–writer lock whose acquisitions return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
