//! Offline stand-in for `serde`.
//!
//! Exposes marker [`Serialize`] / [`Deserialize`] traits (blanket-implemented
//! for every type) and, behind the `derive` feature, no-op derive macros, so
//! that the workspace's `#[derive(Serialize, Deserialize)]` annotations keep
//! compiling without registry access. Real (de)serialization in this
//! repository is the hand-written TOML scenario layer in `mcc-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`; satisfied by every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`; satisfied by every type.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
