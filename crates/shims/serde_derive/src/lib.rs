//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The offline workspace keeps `#[derive(Serialize, Deserialize)]`
//! annotations compiling (including `#[serde(...)]` helper attributes)
//! without generating any code; actual persistence in this repository goes
//! through the hand-written TOML layer in `mcc-bench`.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Accept and discard a `#[derive(Serialize)]` request.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept and discard a `#[derive(Deserialize)]` request.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
