//! Amortized trial pipeline: per-mesh model caching + reusable scratch.
//!
//! A [`crate::trial::run_trial_2d_with`] call rebuilds every model —
//! labelling, MCC decomposition, fault blocks — for its single
//! source/destination pair, even though all of them depend only on the
//! fault set plus (for the labelling family) one of the finitely many
//! canonical frame orientations. A [`PreparedMesh2`] / [`PreparedMesh3`]
//! amortizes that work across every pair evaluated against one fault
//! configuration:
//!
//! * models are fetched through a [`fault_model::ModelCache2`] /
//!   [`fault_model::ModelCache3`] — fault blocks computed once per mesh,
//!   labelling + MCC set once per orientation actually encountered
//!   (≤ 4 in 2-D, ≤ 8 in 3-D);
//! * per-trial transient state — the oracle/condition/block reachability
//!   sweeps, the router's backward-reachability set, the 3-D detection
//!   flood — runs in scratch buffers owned by the prepared mesh, so
//!   steady-state trials allocate only their output paths.
//!
//! Results are **identical** to the fresh-per-trial functions (the fresh
//! functions are thin wrappers over this path, and a property-test battery
//! in `tests/prepared_equiv.rs` pins the equivalence): the models are pure
//! functions of `(faults, orientation, border policy)` and the policy
//! seeding is untouched, so caching cannot change a single field of the
//! [`TrialResult`]. The benchmark harness (`mcc-bench`) batches all pairs
//! of a seed against one prepared mesh; `BENCH_routing_trials.json`
//! records the resulting speedup.
//!
//! # Examples
//!
//! ```
//! use mcc_routing::prepared::PreparedMesh2;
//! use mcc_routing::trial::run_trial_2d_with;
//! use mcc_routing::TrialOptions;
//! use mesh_topo::coord::c2;
//! use mesh_topo::Mesh2D;
//!
//! let mut mesh = Mesh2D::new(12, 12);
//! mesh.inject_fault(c2(5, 6));
//!
//! let opts = TrialOptions::default();
//! let mut pm = PreparedMesh2::new(&mesh, opts);
//! for (pair, seed) in [((c2(0, 0), c2(11, 11)), 7), ((c2(11, 0), c2(0, 11)), 8)] {
//!     let prepared = pm.run_trial(pair.0, pair.1, seed);
//!     let fresh = run_trial_2d_with(&mesh, pair.0, pair.1, seed, &opts);
//!     assert_eq!(prepared.mcc_hops, fresh.mcc_hops);
//!     assert_eq!(prepared.mcc_adaptivity.to_bits(), fresh.mcc_adaptivity.to_bits());
//! }
//! ```

use fault_model::oracle::{Useful2, Useful3};
use fault_model::{oracle, ModelCache2, ModelCache3};
use mesh_topo::{Frame2, Frame3, Mesh2D, Mesh3D, Parallelism, C2, C3};

use crate::baseline;
use crate::feasibility3::FloodScratch3;
use crate::policy::Policy;
use crate::router2::Router2;
use crate::router3::Router3;
use crate::trace::RouteResult;
use crate::trial::{mcc_ok_2d, mcc_ok_3d, TrialOptions, TrialResult};

/// A 2-D fault configuration prepared for a batch of routing trials:
/// orientation-keyed model cache plus reusable trial scratch.
#[derive(Clone, Debug)]
pub struct PreparedMesh2<'m> {
    models: ModelCache2<'m>,
    opts: TrialOptions,
    /// Reachability buffer for the oracle, the block-model check and the
    /// block router (which reuses the check's sweep).
    useful: Useful2,
    /// Reachability buffer for the MCC existence condition and the MCC
    /// router (which reuses the condition's sweep) — kept separate from
    /// `useful` so the block-model check in between cannot clobber it.
    cond_useful: Useful2,
}

impl<'m> PreparedMesh2<'m> {
    /// Prepare `mesh` for trials under `opts`. Nothing is computed until
    /// the first trial demands it.
    pub fn new(mesh: &'m Mesh2D, opts: TrialOptions) -> PreparedMesh2<'m> {
        PreparedMesh2::with_parallelism(mesh, opts, Parallelism::SEQ)
    }

    /// [`PreparedMesh2::new`] with an intra-mesh thread budget: cached
    /// labellings run as tiled wavefront sweeps. Trial results are
    /// **bit-for-bit equal** to the sequential prepared path for every
    /// budget.
    pub fn with_parallelism(
        mesh: &'m Mesh2D,
        opts: TrialOptions,
        parallelism: Parallelism,
    ) -> PreparedMesh2<'m> {
        PreparedMesh2 {
            models: ModelCache2::with_parallelism(mesh, opts.border, parallelism),
            opts,
            useful: Useful2::scratch(),
            cond_useful: Useful2::scratch(),
        }
    }

    /// The mesh this prepared state describes.
    pub fn mesh(&self) -> &'m Mesh2D {
        self.models.mesh()
    }

    /// The trial options every trial of this batch runs under.
    pub fn opts(&self) -> &TrialOptions {
        &self.opts
    }

    /// Number of frame orientations whose models have been computed so far.
    pub fn orientations_computed(&self) -> usize {
        self.models.orientations_computed()
    }

    /// Run one trial against the cached models. Identical results to
    /// [`crate::trial::run_trial_2d_with`] on the same inputs.
    ///
    /// # Panics
    /// If either endpoint is faulty.
    pub fn run_trial(&mut self, s: C2, d: C2, policy_seed: u64) -> TrialResult {
        let mesh = self.models.mesh();
        assert!(
            mesh.is_healthy(s) && mesh.is_healthy(d),
            "trial endpoints must be healthy"
        );
        let opts = self.opts;
        let frame = Frame2::for_pair(mesh, s, d);
        let (cs, cd) = (frame.to_canon(s), frame.to_canon(d));
        let m = self.models.models(frame, opts.eval_mcc, opts.eval_rfb);
        let (lab, mccs, blocks) = (m.lab, m.mccs, m.blocks);

        let oracle_ok = oracle::reachable_2d_in(
            cs,
            cd,
            |c| {
                let m = frame.from_canon(c);
                !mesh.contains(m) || mesh.is_faulty(m)
            },
            &mut self.useful,
        );
        // The condition's sweep stays in `cond_useful` for the router; the
        // block check's sweep stays in `useful` for the block router.
        let mcc_ok = mcc_ok_2d(lab, mccs, cs, cd, &mut self.cond_useful);
        let rfb_ok = blocks.is_some_and(|b| b.minimal_path_exists_in(mesh, s, d, &mut self.useful));
        let endpoints_safe = lab.is_safe(cs) && lab.is_safe(cd);

        let mut result = TrialResult {
            oracle_ok,
            mcc_ok,
            rfb_ok,
            endpoints_safe,
            ..TrialResult::default()
        };

        if opts.eval_greedy {
            let greedy = baseline::route_greedy_2d(lab, cs, cd, &mut Policy::random(policy_seed));
            result.greedy_ok = greedy.result == RouteResult::Delivered;
        }

        if endpoints_safe {
            if let Some(mccs) = mccs {
                // `cond_useful` still holds the condition's closure sweep
                // for exactly this canonical pair (or is unread: s == d).
                let router = Router2::new(lab, mccs);
                let out = router.route_with_rule_reusing(
                    cs,
                    cd,
                    &mut Policy::random(policy_seed ^ 0x9e37_79b9),
                    crate::router2::DecisionRule::BoundaryExact,
                    &self.cond_useful,
                );
                result.detection_cost = out.detection_hops;
                if out.delivered() {
                    result.mcc_delivered = true;
                    result.mcc_hops = out.path.hops();
                    result.mcc_adaptivity = out.adaptivity();
                }
            }
        }
        if rfb_ok {
            // `useful` still holds the block check's sweep, which admitted
            // this pair — the block router forwards straight over it.
            let out = baseline::route_rfb_2d_reusing(
                mesh,
                s,
                d,
                &mut Policy::random(policy_seed ^ 0x51),
                &self.useful,
            );
            if out.delivered() {
                result.rfb_adaptivity = out.adaptivity();
            }
        }
        result
    }
}

/// A 3-D fault configuration prepared for a batch of routing trials
/// (see [`PreparedMesh2`]).
#[derive(Clone, Debug)]
pub struct PreparedMesh3<'m> {
    models: ModelCache3<'m>,
    opts: TrialOptions,
    useful: Useful3,
    cond_useful: Useful3,
    flood: FloodScratch3,
}

impl<'m> PreparedMesh3<'m> {
    /// Prepare `mesh` for trials under `opts`. Nothing is computed until
    /// the first trial demands it.
    pub fn new(mesh: &'m Mesh3D, opts: TrialOptions) -> PreparedMesh3<'m> {
        PreparedMesh3::with_parallelism(mesh, opts, Parallelism::SEQ)
    }

    /// [`PreparedMesh3::new`] with an intra-mesh thread budget: cached
    /// labellings run as tiled wavefront sweeps and the three detection
    /// floods of each trial fan out over scoped threads. Trial results
    /// are **bit-for-bit equal** to the sequential prepared path for
    /// every budget.
    pub fn with_parallelism(
        mesh: &'m Mesh3D,
        opts: TrialOptions,
        parallelism: Parallelism,
    ) -> PreparedMesh3<'m> {
        PreparedMesh3 {
            models: ModelCache3::with_parallelism(mesh, opts.border, parallelism),
            opts,
            useful: Useful3::scratch(),
            cond_useful: Useful3::scratch(),
            flood: FloodScratch3::parallel(parallelism),
        }
    }

    /// The mesh this prepared state describes.
    pub fn mesh(&self) -> &'m Mesh3D {
        self.models.mesh()
    }

    /// The trial options every trial of this batch runs under.
    pub fn opts(&self) -> &TrialOptions {
        &self.opts
    }

    /// Number of frame orientations whose models have been computed so far.
    pub fn orientations_computed(&self) -> usize {
        self.models.orientations_computed()
    }

    /// Run one trial against the cached models. Identical results to
    /// [`crate::trial::run_trial_3d_with`] on the same inputs.
    ///
    /// # Panics
    /// If either endpoint is faulty.
    pub fn run_trial(&mut self, s: C3, d: C3, policy_seed: u64) -> TrialResult {
        let mesh = self.models.mesh();
        assert!(
            mesh.is_healthy(s) && mesh.is_healthy(d),
            "trial endpoints must be healthy"
        );
        let opts = self.opts;
        let frame = Frame3::for_pair(mesh, s, d);
        let (cs, cd) = (frame.to_canon(s), frame.to_canon(d));
        let m = self.models.models(frame, opts.eval_mcc, opts.eval_rfb);
        let (lab, mccs, blocks) = (m.lab, m.mccs, m.blocks);

        let oracle_ok = oracle::reachable_3d_in(
            cs,
            cd,
            |c| {
                let m = frame.from_canon(c);
                !mesh.contains(m) || mesh.is_faulty(m)
            },
            &mut self.useful,
        );
        let mcc_ok = mcc_ok_3d(lab, mccs, cs, cd, &mut self.cond_useful);
        let rfb_ok = blocks.is_some_and(|b| b.minimal_path_exists_in(mesh, s, d, &mut self.useful));
        let endpoints_safe = lab.is_safe(cs) && lab.is_safe(cd);

        let mut result = TrialResult {
            oracle_ok,
            mcc_ok,
            rfb_ok,
            endpoints_safe,
            ..TrialResult::default()
        };

        if opts.eval_greedy {
            let greedy = baseline::route_greedy_3d(lab, cs, cd, &mut Policy::random(policy_seed));
            result.greedy_ok = greedy.result == RouteResult::Delivered;
        }

        if endpoints_safe {
            if let Some(mccs) = mccs {
                // `cond_useful` still holds the condition's closure sweep
                // for exactly this canonical pair (or is unread: s == d).
                let router = Router3::new(lab, mccs);
                let out = router.route_with_rule_reusing(
                    cs,
                    cd,
                    &mut Policy::random(policy_seed ^ 0x9e37_79b9),
                    crate::router2::DecisionRule::BoundaryExact,
                    &self.cond_useful,
                    &mut self.flood,
                );
                result.detection_cost = out.detection_cost;
                if out.delivered() {
                    result.mcc_delivered = true;
                    result.mcc_hops = out.path.hops();
                    result.mcc_adaptivity = out.adaptivity();
                }
            }
        }
        if rfb_ok {
            // `useful` still holds the block check's sweep, which admitted
            // this pair — the block router forwards straight over it.
            let out = baseline::route_rfb_3d_reusing(
                mesh,
                s,
                d,
                &mut Policy::random(policy_seed ^ 0x51),
                &self.useful,
            );
            if out.delivered() {
                result.rfb_adaptivity = out.adaptivity();
            }
        }
        result
    }
}

/// Run one 2-D trial against a prepared mesh (the batched form of
/// [`crate::trial::run_trial_2d_with`]).
///
/// # Panics
/// If either endpoint is faulty.
pub fn run_trial_2d_prepared(
    prepared: &mut PreparedMesh2<'_>,
    s: C2,
    d: C2,
    policy_seed: u64,
) -> TrialResult {
    prepared.run_trial(s, d, policy_seed)
}

/// Run one 3-D trial against a prepared mesh (the batched form of
/// [`crate::trial::run_trial_3d_with`]).
///
/// # Panics
/// If either endpoint is faulty.
pub fn run_trial_3d_prepared(
    prepared: &mut PreparedMesh3<'_>,
    s: C3,
    d: C3,
    policy_seed: u64,
) -> TrialResult {
    prepared.run_trial(s, d, policy_seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::{c2, c3};
    use mesh_topo::FaultSpec;

    #[test]
    fn prepared_matches_fresh_across_a_batch_2d() {
        let mut mesh = Mesh2D::new(16, 16);
        FaultSpec::uniform(30, 5).inject_2d(&mut mesh, &[]);
        let opts = TrialOptions::default();
        let mut pm = PreparedMesh2::new(&mesh, opts);
        let mut trials = 0;
        for seed in 0..40u64 {
            let a = c2((seed as i32 * 7) % 16, (seed as i32 * 3) % 16);
            let b = c2((seed as i32 * 5 + 2) % 16, (seed as i32 * 11 + 4) % 16);
            if !mesh.is_healthy(a) || !mesh.is_healthy(b) {
                continue;
            }
            trials += 1;
            let p = run_trial_2d_prepared(&mut pm, a, b, seed);
            let f = crate::trial::run_trial_2d_with(&mesh, a, b, seed, &opts);
            assert!(p.bit_identical(&f), "seed {seed}: {p:?} != {f:?}");
        }
        assert!(trials > 20, "too few healthy pairs: {trials}");
        // All four quadrant orientations were exercised and cached.
        assert!(pm.orientations_computed() >= 2);
    }

    #[test]
    fn prepared_matches_fresh_across_a_batch_3d() {
        let mut mesh = Mesh3D::kary(8);
        FaultSpec::uniform(40, 9).inject_3d(&mut mesh, &[]);
        let opts = TrialOptions::default();
        let mut pm = PreparedMesh3::new(&mesh, opts);
        let mut trials = 0;
        for seed in 0..40u64 {
            let a = c3(
                (seed as i32 * 7) % 8,
                (seed as i32 * 3) % 8,
                (seed as i32 * 5) % 8,
            );
            let b = c3(
                (seed as i32 * 5 + 2) % 8,
                (seed as i32 * 11 + 4) % 8,
                (seed as i32 * 13 + 1) % 8,
            );
            if !mesh.is_healthy(a) || !mesh.is_healthy(b) {
                continue;
            }
            trials += 1;
            let p = run_trial_3d_prepared(&mut pm, a, b, seed);
            let f = crate::trial::run_trial_3d_with(&mesh, a, b, seed, &opts);
            assert!(p.bit_identical(&f), "seed {seed}: {p:?} != {f:?}");
        }
        assert!(trials > 20, "too few healthy pairs: {trials}");
    }

    #[test]
    fn model_selection_is_honored() {
        let mut mesh = Mesh2D::new(10, 10);
        mesh.inject_fault(c2(4, 4));
        let opts = TrialOptions {
            eval_mcc: false,
            eval_rfb: false,
            eval_greedy: false,
            ..TrialOptions::default()
        };
        let mut pm = PreparedMesh2::new(&mesh, opts);
        let t = pm.run_trial(c2(0, 0), c2(9, 9), 3);
        assert!(t.oracle_ok);
        assert!(!t.mcc_ok && !t.rfb_ok && !t.greedy_ok && !t.mcc_delivered);
    }
}
