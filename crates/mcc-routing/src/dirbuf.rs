//! Fixed-capacity direction buffers for the per-hop candidate sets.
//!
//! Every router hop rebuilds the set of allowed forwarding directions.
//! A heap-backed `Vec<Dir>` puts an allocation (and a pointer chase) on
//! the hottest loop of every route; these inline buffers are `Copy`-sized
//! arrays plus a length, so the candidate set lives entirely in registers
//! or on the stack. Capacity is the full direction fan-out (4 in 2-D, 6
//! in 3-D) even though minimal routing only ever pushes the positive
//! half, so misrouting extensions cannot overflow them.

use mesh_topo::{Dir2, Dir3};

/// Inline candidate set of 2-D directions (`[Dir2; 4]` + length).
#[derive(Clone, Copy, Debug)]
pub(crate) struct DirBuf2 {
    dirs: [Dir2; 4],
    len: usize,
}

impl DirBuf2 {
    /// The empty candidate set.
    pub(crate) fn new() -> DirBuf2 {
        DirBuf2 {
            dirs: [Dir2::Xp; 4],
            len: 0,
        }
    }

    /// Drop every candidate.
    #[inline]
    pub(crate) fn clear(&mut self) {
        self.len = 0;
    }

    /// Append a candidate direction.
    ///
    /// # Panics
    /// If the buffer already holds all four directions (debug builds).
    #[inline]
    pub(crate) fn push(&mut self, d: Dir2) {
        debug_assert!(self.len < self.dirs.len(), "direction buffer overflow");
        self.dirs[self.len] = d;
        self.len += 1;
    }

    /// True when no direction is allowed.
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of allowed directions (the hop's adaptivity contribution).
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The candidates as a slice (what the [`crate::policy::Policy`]
    /// selectors consume).
    #[inline]
    pub(crate) fn as_slice(&self) -> &[Dir2] {
        &self.dirs[..self.len]
    }
}

/// Inline candidate set of 3-D directions (`[Dir3; 6]` + length).
#[derive(Clone, Copy, Debug)]
pub(crate) struct DirBuf3 {
    dirs: [Dir3; 6],
    len: usize,
}

impl DirBuf3 {
    /// The empty candidate set.
    pub(crate) fn new() -> DirBuf3 {
        DirBuf3 {
            dirs: [Dir3::Xp; 6],
            len: 0,
        }
    }

    /// Drop every candidate.
    #[inline]
    pub(crate) fn clear(&mut self) {
        self.len = 0;
    }

    /// Append a candidate direction.
    ///
    /// # Panics
    /// If the buffer already holds all six directions (debug builds).
    #[inline]
    pub(crate) fn push(&mut self, d: Dir3) {
        debug_assert!(self.len < self.dirs.len(), "direction buffer overflow");
        self.dirs[self.len] = d;
        self.len += 1;
    }

    /// True when no direction is allowed.
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of allowed directions (the hop's adaptivity contribution).
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The candidates as a slice (what the [`crate::policy::Policy`]
    /// selectors consume).
    #[inline]
    pub(crate) fn as_slice(&self) -> &[Dir3] {
        &self.dirs[..self.len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirbuf2_push_clear_slice() {
        let mut b = DirBuf2::new();
        assert!(b.is_empty());
        b.push(Dir2::Yp);
        b.push(Dir2::Xp);
        assert_eq!(b.len(), 2);
        assert_eq!(b.as_slice(), &[Dir2::Yp, Dir2::Xp]);
        b.clear();
        assert!(b.is_empty() && b.as_slice().is_empty());
    }

    #[test]
    fn dirbuf3_holds_full_fanout() {
        let mut b = DirBuf3::new();
        for d in Dir3::ALL {
            b.push(d);
        }
        assert_eq!(b.len(), 6);
        assert_eq!(b.as_slice(), &Dir3::ALL[..]);
    }
}
