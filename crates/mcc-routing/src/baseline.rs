//! Baseline routers the MCC router is compared against.
//!
//! * [`route_greedy_2d`] / [`route_greedy_3d`] — *no fault information*:
//!   forward along any preferred direction whose neighbor is healthy,
//!   getting stuck in dead ends the labelling would have flagged. The gap
//!   between its delivery rate and the oracle quantifies the value of fault
//!   information.
//! * [`route_rfb_2d`] / [`route_rfb_3d`] — routing under the rectangular /
//!   cuboid block model: identical two-phase structure to the MCC router but
//!   with the coarser disabled set, so feasibility is refused more often.

use fault_model::oracle::{Useful2, Useful3};
use fault_model::{FaultBlocks2, FaultBlocks3, Labelling2, Labelling3};
use mesh_topo::{Dir2, Dir3, Path2, Path3, C2, C3};

use crate::dirbuf::{DirBuf2, DirBuf3};
use crate::policy::Policy;
use crate::trace::{RouteOutcome2, RouteOutcome3, RouteResult};

/// Greedy fault-information-free routing in 2-D (canonical `s ≤ d`).
///
/// Moves along preferred directions avoiding only *faulty* neighbors. May
/// strand in dead ends; never produces a non-minimal path.
///
/// # Panics
/// If `s` does not precede `d` componentwise.
pub fn route_greedy_2d(lab: &Labelling2, s: C2, d: C2, policy: &mut Policy) -> RouteOutcome2 {
    assert!(s.dominated_by(d), "router requires canonical s <= d");
    let healthy = |c: C2| lab.status_get(c).map(|t| !t.is_faulty()).unwrap_or(false);
    if !healthy(s) || !healthy(d) {
        return RouteOutcome2 {
            result: RouteResult::Infeasible,
            path: Path2::start(s),
            adaptivity_sum: 0,
            detection_hops: 0,
        };
    }
    let mut path = Path2::start(s);
    let mut adaptivity_sum = 0usize;
    let mut u = s;
    let mut allowed = DirBuf2::new();
    while u != d {
        allowed.clear();
        for dir in Dir2::POSITIVE {
            if u.get(dir.axis()) >= d.get(dir.axis()) {
                continue;
            }
            if healthy(u.step(dir)) {
                allowed.push(dir);
            }
        }
        if allowed.is_empty() {
            return RouteOutcome2 {
                result: RouteResult::Stuck,
                path,
                adaptivity_sum,
                detection_hops: 0,
            };
        }
        adaptivity_sum += allowed.len();
        let dir = policy.choose2(u, d, allowed.as_slice());
        u = u.step(dir);
        path.push(u);
    }
    RouteOutcome2 {
        result: RouteResult::Delivered,
        path,
        adaptivity_sum,
        detection_hops: 0,
    }
}

/// Greedy fault-information-free routing in 3-D (canonical `s ≤ d`).
///
/// # Panics
/// If `s` does not precede `d` componentwise.
pub fn route_greedy_3d(lab: &Labelling3, s: C3, d: C3, policy: &mut Policy) -> RouteOutcome3 {
    assert!(s.dominated_by(d), "router requires canonical s <= d");
    let healthy = |c: C3| lab.status_get(c).map(|t| !t.is_faulty()).unwrap_or(false);
    if !healthy(s) || !healthy(d) {
        return RouteOutcome3 {
            result: RouteResult::Infeasible,
            path: Path3::start(s),
            adaptivity_sum: 0,
            detection_cost: 0,
        };
    }
    let mut path = Path3::start(s);
    let mut adaptivity_sum = 0usize;
    let mut u = s;
    let mut allowed = DirBuf3::new();
    while u != d {
        allowed.clear();
        for dir in Dir3::POSITIVE {
            if u.get(dir.axis()) >= d.get(dir.axis()) {
                continue;
            }
            if healthy(u.step(dir)) {
                allowed.push(dir);
            }
        }
        if allowed.is_empty() {
            return RouteOutcome3 {
                result: RouteResult::Stuck,
                path,
                adaptivity_sum,
                detection_cost: 0,
            };
        }
        adaptivity_sum += allowed.len();
        let dir = policy.choose3(u, d, allowed.as_slice());
        u = u.step(dir);
        path.push(u);
    }
    RouteOutcome3 {
        result: RouteResult::Delivered,
        path,
        adaptivity_sum,
        detection_cost: 0,
    }
}

/// Routing under the 2-D rectangular-block model. `s`, `d` are **mesh**
/// coordinates (the block model is orientation-free; canonicalization is
/// internal). Refuses whenever the block model sees no minimal path.
pub fn route_rfb_2d(
    blocks: &FaultBlocks2,
    mesh: &mesh_topo::Mesh2D,
    s: C2,
    d: C2,
    policy: &mut Policy,
) -> RouteOutcome2 {
    route_rfb_2d_in(blocks, mesh, s, d, policy, &mut Useful2::scratch())
}

/// [`route_rfb_2d`] with a caller-provided scratch buffer for the
/// block-useful set (see [`Useful2::recompute`]).
pub fn route_rfb_2d_in(
    blocks: &FaultBlocks2,
    mesh: &mesh_topo::Mesh2D,
    s: C2,
    d: C2,
    policy: &mut Policy,
    useful: &mut Useful2,
) -> RouteOutcome2 {
    let frame = mesh_topo::Frame2::for_pair(mesh, s, d);
    let (cs, cd) = (frame.to_canon(s), frame.to_canon(d));
    let disabled = |c: C2| {
        let m = frame.from_canon(c);
        !mesh.contains(m) || blocks.is_disabled(m)
    };
    if disabled(cs) || disabled(cd) {
        return RouteOutcome2 {
            result: RouteResult::Infeasible,
            path: Path2::start(s),
            adaptivity_sum: 0,
            detection_hops: 0,
        };
    }
    useful.recompute(cs, cd, disabled);
    route_rfb_2d_reusing(mesh, s, d, policy, useful)
}

/// The tail of [`route_rfb_2d_in`], reusing a block-useful set the caller
/// just computed for exactly this `(s, d)` — what
/// [`FaultBlocks2::minimal_path_exists_in`] leaves behind when it admits
/// the pair. Skips one box sweep; content-identical input means
/// identical outcomes.
pub(crate) fn route_rfb_2d_reusing(
    mesh: &mesh_topo::Mesh2D,
    s: C2,
    d: C2,
    policy: &mut Policy,
    useful: &Useful2,
) -> RouteOutcome2 {
    let frame = mesh_topo::Frame2::for_pair(mesh, s, d);
    let (cs, cd) = (frame.to_canon(s), frame.to_canon(d));
    if !useful.contains(cs) {
        return RouteOutcome2 {
            result: RouteResult::Infeasible,
            path: Path2::start(s),
            adaptivity_sum: 0,
            detection_hops: 0,
        };
    }
    let mut path = Path2::start(s);
    let mut adaptivity_sum = 0usize;
    let mut u = cs;
    let mut allowed = DirBuf2::new();
    while u != cd {
        allowed.clear();
        for dir in Dir2::POSITIVE {
            if u.get(dir.axis()) >= cd.get(dir.axis()) {
                continue;
            }
            if useful.contains(u.step(dir)) {
                allowed.push(dir);
            }
        }
        assert!(!allowed.is_empty(), "block-useful set cannot strand");
        adaptivity_sum += allowed.len();
        let dir = policy.choose2(u, cd, allowed.as_slice());
        u = u.step(dir);
        path.push(frame.from_canon(u));
    }
    RouteOutcome2 {
        result: RouteResult::Delivered,
        path,
        adaptivity_sum,
        detection_hops: 0,
    }
}

/// Routing under the 3-D cuboid-block model (mesh coordinates).
pub fn route_rfb_3d(
    blocks: &FaultBlocks3,
    mesh: &mesh_topo::Mesh3D,
    s: C3,
    d: C3,
    policy: &mut Policy,
) -> RouteOutcome3 {
    route_rfb_3d_in(blocks, mesh, s, d, policy, &mut Useful3::scratch())
}

/// [`route_rfb_3d`] with a caller-provided scratch buffer for the
/// block-useful set (see [`Useful3::recompute`]).
pub fn route_rfb_3d_in(
    blocks: &FaultBlocks3,
    mesh: &mesh_topo::Mesh3D,
    s: C3,
    d: C3,
    policy: &mut Policy,
    useful: &mut Useful3,
) -> RouteOutcome3 {
    let frame = mesh_topo::Frame3::for_pair(mesh, s, d);
    let (cs, cd) = (frame.to_canon(s), frame.to_canon(d));
    let disabled = |c: C3| {
        let m = frame.from_canon(c);
        !mesh.contains(m) || blocks.is_disabled(m)
    };
    if disabled(cs) || disabled(cd) {
        return RouteOutcome3 {
            result: RouteResult::Infeasible,
            path: Path3::start(s),
            adaptivity_sum: 0,
            detection_cost: 0,
        };
    }
    useful.recompute(cs, cd, disabled);
    route_rfb_3d_reusing(mesh, s, d, policy, useful)
}

/// 3-D twin of [`route_rfb_2d_reusing`].
pub(crate) fn route_rfb_3d_reusing(
    mesh: &mesh_topo::Mesh3D,
    s: C3,
    d: C3,
    policy: &mut Policy,
    useful: &Useful3,
) -> RouteOutcome3 {
    let frame = mesh_topo::Frame3::for_pair(mesh, s, d);
    let (cs, cd) = (frame.to_canon(s), frame.to_canon(d));
    if !useful.contains(cs) {
        return RouteOutcome3 {
            result: RouteResult::Infeasible,
            path: Path3::start(s),
            adaptivity_sum: 0,
            detection_cost: 0,
        };
    }
    let mut path = Path3::start(s);
    let mut adaptivity_sum = 0usize;
    let mut u = cs;
    let mut allowed = DirBuf3::new();
    while u != cd {
        allowed.clear();
        for dir in Dir3::POSITIVE {
            if u.get(dir.axis()) >= cd.get(dir.axis()) {
                continue;
            }
            if useful.contains(u.step(dir)) {
                allowed.push(dir);
            }
        }
        assert!(!allowed.is_empty(), "block-useful set cannot strand");
        adaptivity_sum += allowed.len();
        let dir = policy.choose3(u, cd, allowed.as_slice());
        u = u.step(dir);
        path.push(frame.from_canon(u));
    }
    RouteOutcome3 {
        result: RouteResult::Delivered,
        path,
        adaptivity_sum,
        detection_cost: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_model::BorderPolicy;
    use mesh_topo::coord::{c2, c3};
    use mesh_topo::{Frame2, Frame3, Mesh2D, Mesh3D};

    #[test]
    fn greedy_can_get_stuck_where_mcc_would_not() {
        // A staircase wall funnels the X-first walk into the dead-end
        // pocket at (4,2): +X = (5,2) and +Y = (4,3) are both faulty there.
        let mut mesh = Mesh2D::new(10, 10);
        for c in [c2(5, 0), c2(5, 1), c2(5, 2), c2(4, 3)] {
            mesh.inject_fault(c);
        }
        let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        assert!(lab.status(c2(4, 2)).is_useless());
        let mut policy = Policy::x_first();
        let out = route_greedy_2d(&lab, c2(0, 0), c2(6, 8), &mut policy);
        assert_eq!(out.result, RouteResult::Stuck);
        // The MCC router refuses nothing here — a minimal path exists and it
        // finds one.
        use fault_model::mcc2::MccSet2;
        let set = MccSet2::compute(&lab);
        let router = crate::router2::Router2::new(&lab, &set);
        let mcc_out = router.route(c2(0, 0), c2(6, 8), &mut Policy::x_first());
        assert!(mcc_out.delivered());
        assert!(mcc_out.path.is_minimal(&mesh, c2(0, 0), c2(6, 8)));
    }

    #[test]
    fn greedy_delivers_when_lucky() {
        let mesh = Mesh2D::new(8, 8);
        let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        let out = route_greedy_2d(&lab, c2(0, 0), c2(7, 7), &mut Policy::balanced());
        assert!(out.delivered());
        assert_eq!(out.path.hops(), 14);
    }

    #[test]
    fn greedy_3d_stuck_needs_all_three_blocked() {
        let mut mesh = Mesh3D::kary(8);
        for c in [c3(5, 4, 4), c3(4, 5, 4), c3(4, 4, 5)] {
            mesh.inject_fault(c);
        }
        let lab = Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
        let out = route_greedy_3d(&lab, c3(4, 4, 0), c3(6, 6, 6), &mut Policy::x_first());
        // XFirst from (4,4,0): +X to... x reaches 6 first, so it may miss
        // the pocket; use a pocket on its actual path instead: route toward
        // the pocket corner.
        let _ = out;
        let out2 = route_greedy_3d(&lab, c3(4, 4, 0), c3(5, 5, 6), &mut Policy::zigzag());
        // Either stuck at the pocket or delivered around it; both are legal
        // greedy outcomes, but a delivered path must be minimal.
        if out2.result == RouteResult::Delivered {
            assert!(out2.path.is_minimal(&mesh, c3(4, 4, 0), c3(5, 5, 6)));
        }
    }

    #[test]
    fn rfb_router_minimal_when_it_routes() {
        let mut mesh = Mesh2D::new(10, 10);
        for c in [c2(3, 3), c2(4, 4)] {
            mesh.inject_fault(c);
        }
        let blocks = FaultBlocks2::compute(&mesh);
        for mut policy in Policy::suite(7) {
            let out = route_rfb_2d(&blocks, &mesh, c2(0, 0), c2(8, 8), &mut policy);
            assert!(out.delivered());
            assert!(out.path.is_minimal(&mesh, c2(0, 0), c2(8, 8)));
            // Never touches a disabled node.
            for &n in out.path.nodes() {
                assert!(!blocks.is_disabled(n));
            }
        }
    }

    #[test]
    fn rfb_refuses_what_mcc_accepts() {
        // Endpoint healthy but inside a block: RFB refuses, MCC routes.
        let mut mesh = Mesh2D::new(10, 10);
        mesh.inject_fault(c2(3, 3));
        mesh.inject_fault(c2(4, 4));
        let blocks = FaultBlocks2::compute(&mesh);
        let d = c2(3, 4); // healthy, inside the 2x2 block
        assert!(mesh.is_healthy(d));
        let out = route_rfb_2d(&blocks, &mesh, c2(0, 0), d, &mut Policy::x_first());
        assert_eq!(out.result, RouteResult::Infeasible);
        let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        use fault_model::mcc2::MccSet2;
        let set = MccSet2::compute(&lab);
        let router = crate::router2::Router2::new(&lab, &set);
        let mcc_out = router.route(c2(0, 0), d, &mut Policy::x_first());
        assert!(
            mcc_out.delivered(),
            "MCC must deliver to the healthy in-block node"
        );
    }

    #[test]
    fn rfb_router_works_in_all_orientations() {
        let mut mesh = Mesh3D::kary(6);
        mesh.inject_fault(c3(3, 3, 3));
        let blocks = FaultBlocks3::compute(&mesh);
        let pairs = [
            (c3(0, 0, 0), c3(5, 5, 5)),
            (c3(5, 5, 5), c3(0, 0, 0)),
            (c3(0, 5, 0), c3(5, 0, 5)),
            (c3(5, 0, 5), c3(0, 5, 0)),
        ];
        for (s, d) in pairs {
            let out = route_rfb_3d(&blocks, &mesh, s, d, &mut Policy::balanced());
            assert!(out.delivered(), "{s} -> {d}");
            assert!(out.path.is_minimal(&mesh, s, d));
        }
    }
}
