//! Algorithm 3 step 1 — feasibility detection in 2-D meshes.
//!
//! At the source two detection messages are sent:
//!
//! * the first along the `+Y` direction, turning `+X` when it runs into a
//!   fault region and back to `+Y` as soon as possible, succeeding when it
//!   reaches the segment `[xs : xd, yd : yd]` (the top edge of the RMP);
//! * the second along `+X` with `+Y` detours, targeting the right edge
//!   `[xd : xd, ys : yd]`.
//!
//! A minimal path exists iff both messages succeed (the operational form of
//! Theorem 1, property-tested equivalent to the semantic condition).
//!
//! The walks need only node-local status: a detour step is always possible
//! because a safe node with both positive neighbors unsafe would have been
//! labelled useless, contradicting its safety — the closure is exactly what
//! makes this local rule complete.

use fault_model::Labelling2;
use mesh_topo::{Dir2, C2};
use serde::{Deserialize, Serialize};

/// Result of the source feasibility check.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Detection2 {
    /// The `+Y` detection message reached the top edge of the RMP.
    pub y_ok: bool,
    /// The `+X` detection message reached the right edge of the RMP.
    pub x_ok: bool,
    /// Total hops travelled by both detection messages (the detection cost
    /// in message transmissions).
    pub hops: usize,
}

impl Detection2 {
    /// True iff routing may be activated (both messages succeeded).
    pub fn feasible(self) -> bool {
        self.y_ok && self.x_ok
    }
}

/// Run the two detection walks for canonical safe `s ≤ d`.
///
/// Endpoints must be safe under `lab` (the theorems' precondition; callers
/// triage labelled endpoints first — see `fault_model::condition2`).
///
/// # Panics
/// If `s` does not precede `d` componentwise, or an endpoint is unsafe.
pub fn detect_2d(lab: &Labelling2, s: C2, d: C2) -> Detection2 {
    assert!(s.dominated_by(d), "detection requires canonical s <= d");
    assert!(
        lab.is_safe(s) && lab.is_safe(d),
        "detection requires safe endpoints; triage labelled endpoints first"
    );
    let mut hops = 0;
    let y_ok = walk(lab, s, d, Dir2::Yp, Dir2::Xp, &mut hops);
    let x_ok = walk(lab, s, d, Dir2::Xp, Dir2::Yp, &mut hops);
    Detection2 { y_ok, x_ok, hops }
}

/// Wall-hugging monotone walk: advance along `main` whenever the next node
/// is safe, detour along `side` when blocked, fail when a detour would
/// leave the RMP.
fn walk(lab: &Labelling2, s: C2, d: C2, main: Dir2, side: Dir2, hops: &mut usize) -> bool {
    let mut pos = s;
    loop {
        if pos.get(main.axis()) == d.get(main.axis()) {
            return true; // reached the target edge of the RMP
        }
        let fwd = pos.step(main);
        if lab.is_safe(fwd) {
            pos = fwd;
            *hops += 1;
            continue;
        }
        // Blocked along `main`: detour along `side`.
        if pos.get(side.axis()) == d.get(side.axis()) {
            return false; // cannot detour without leaving the RMP
        }
        let det = pos.step(side);
        debug_assert!(
            lab.is_safe(det),
            "safe node {pos:?} with both positive neighbors unsafe cannot exist"
        );
        if !lab.is_safe(det) {
            return false; // defensive: should be unreachable
        }
        pos = det;
        *hops += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_model::BorderPolicy;
    use mesh_topo::coord::c2;
    use mesh_topo::{Frame2, Mesh2D};

    fn lab_of(faults: &[C2], w: i32, h: i32) -> Labelling2 {
        let mut mesh = Mesh2D::new(w, h);
        for &f in faults {
            mesh.inject_fault(f);
        }
        Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe)
    }

    #[test]
    fn open_mesh_feasible() {
        let lab = lab_of(&[], 8, 8);
        let det = detect_2d(&lab, c2(0, 0), c2(7, 7));
        assert!(det.feasible());
        assert!(det.hops >= 14); // both walks cross the RMP
    }

    #[test]
    fn single_column_block_detected() {
        let lab = lab_of(&[c2(3, 4)], 8, 8);
        let det = detect_2d(&lab, c2(3, 0), c2(3, 7));
        assert!(!det.feasible());
        assert!(
            !det.y_ok,
            "the +Y walk cannot detour in a single-column RMP"
        );
    }

    #[test]
    fn detour_around_region() {
        // A small region forces a detour but the RMP is wide enough.
        let lab = lab_of(&[c2(1, 3), c2(2, 3)], 8, 8);
        let det = detect_2d(&lab, c2(0, 0), c2(7, 7));
        assert!(det.feasible());
    }

    #[test]
    fn joint_blocking_detected() {
        // The narrow-RMP two-MCC composition the unmerged pair condition
        // misses; the walk must catch it (boundary-merge semantics).
        let lab = lab_of(&[c2(2, 1), c2(3, 8)], 12, 12);
        let det = detect_2d(&lab, c2(2, 0), c2(3, 10));
        assert!(!det.feasible());
    }

    #[test]
    fn walks_agree_with_semantic_condition_randomized() {
        use fault_model::mcc2::MccSet2;
        use fault_model::{minimal_path_exists_2d, Existence2};
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(17);
        let mut checked = 0;
        for trial in 0..500 {
            let mut mesh = Mesh2D::new(12, 12);
            for _ in 0..rng.gen_range(0..16) {
                let c = c2(rng.gen_range(0..12), rng.gen_range(0..12));
                if mesh.is_healthy(c) {
                    mesh.inject_fault(c);
                }
            }
            let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
            let set = MccSet2::compute(&lab);
            let (sx, sy) = (rng.gen_range(0..12), rng.gen_range(0..12));
            let (dx, dy) = (rng.gen_range(0..12), rng.gen_range(0..12));
            let s = c2(sx.min(dx), sy.min(dy));
            let d = c2(sx.max(dx), sy.max(dy));
            if !lab.is_safe(s) || !lab.is_safe(d) {
                continue;
            }
            checked += 1;
            let semantic = minimal_path_exists_2d(&lab, &set, s, d);
            let operational = detect_2d(&lab, s, d).feasible();
            assert_eq!(
                semantic == Existence2::Exists,
                operational,
                "trial {trial}: walk/condition mismatch s={s} d={d} faults={:?}",
                mesh.faults()
            );
        }
        assert!(checked > 200, "too few safe-endpoint trials: {checked}");
    }

    #[test]
    fn degenerate_pairs() {
        let lab = lab_of(&[c2(5, 5)], 8, 8);
        // Same node.
        assert!(detect_2d(&lab, c2(1, 1), c2(1, 1)).feasible());
        // Straight safe line.
        assert!(detect_2d(&lab, c2(0, 2), c2(6, 2)).feasible());
    }

    #[test]
    #[should_panic]
    fn unsafe_endpoint_panics() {
        let lab = lab_of(&[c2(3, 3)], 8, 8);
        detect_2d(&lab, c2(0, 0), c2(3, 3));
    }
}
