//! # mcc-routing — fault-tolerant adaptive and minimal routing
//!
//! The routing layer of the Jiang–Wu–Wang (ICPP 2005) reproduction:
//!
//! * [`feasibility2`] / [`feasibility3`] — the *detection message* walks of
//!   Algorithm 3 step 1 and Algorithm 6 step 1: operational evaluation of
//!   Theorems 1 and 2 using only node-local status, hugging fault regions
//!   with positive-direction turns,
//! * [`policy`] — pluggable fully-adaptive selection policies (the paper
//!   lets "any fully adaptive and minimal routing process" pick among the
//!   surviving preferred directions),
//! * [`router2`] / [`router3`] — the two-phase routing processes
//!   (Algorithms 3 and 6): feasibility check at the source, then per-hop
//!   forwarding that never enters a detour area,
//! * [`baseline`] — comparison routers: greedy (no fault information) and
//!   rectangular/cuboid-block routing,
//! * [`trace`] — route outcomes, adaptivity and path-quality metrics,
//! * [`trial`] — single-trial experiment runners shared by the benchmark
//!   harness,
//! * [`prepared`] — the amortized trial pipeline: per-mesh model caching
//!   (orientation-keyed) plus reusable scratch buffers, so a batch of
//!   trials against one fault configuration pays for model construction
//!   once instead of once per pair.
//!
//! Module ↔ paper map: [`feasibility2`] and [`router2`] are Algorithm 3
//! (Section 3, 2-D routing); [`feasibility3`] and [`router3`] are
//! Algorithm 6 (Section 5, 3-D routing); [`baseline`] provides the
//! information-free and faulty-block routers of the Section 6 comparison;
//! [`trial`] reproduces one data point of the evaluation's success-rate
//! and path-quality tables.
//!
//! # Examples
//!
//! Run a complete trial — labelling, feasibility, MCC routing and all
//! baselines — on a small faulty mesh
//! ([`run_trial_2d_with`](trial::run_trial_2d_with)):
//!
//! ```
//! use mcc_routing::{run_trial_2d, TrialOptions};
//! use mcc_routing::trial::run_trial_2d_with;
//! use mesh_topo::coord::c2;
//! use mesh_topo::Mesh2D;
//!
//! let mut mesh = Mesh2D::new(12, 12);
//! mesh.inject_fault(c2(5, 6));
//! mesh.inject_fault(c2(6, 5));
//!
//! let t = run_trial_2d(&mesh, c2(0, 0), c2(11, 11), 7);
//! assert!(t.oracle_ok, "a minimal path exists among the faults");
//! assert_eq!(t.mcc_ok, t.oracle_ok, "Theorem 1 is exact");
//! assert!(t.mcc_delivered && t.mcc_hops == 22);
//!
//! // The same trial with the block baseline switched off.
//! let opts = TrialOptions { eval_rfb: false, ..TrialOptions::default() };
//! let t = run_trial_2d_with(&mesh, c2(0, 0), c2(11, 11), 7, &opts);
//! assert!(!t.rfb_ok);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
mod dirbuf;
pub mod feasibility2;
pub mod feasibility3;
pub mod policy;
pub mod prepared;
pub mod router2;
pub mod router3;
pub mod trace;
pub mod trial;

pub use feasibility2::{detect_2d, Detection2};
pub use feasibility3::{detect_3d, detect_3d_in, Detection3, FloodScratch3};
pub use policy::Policy;
pub use prepared::{run_trial_2d_prepared, run_trial_3d_prepared, PreparedMesh2, PreparedMesh3};
pub use router2::Router2;
pub use router3::{RouteScratch3, Router3};
pub use trace::{RouteOutcome2, RouteOutcome3};
pub use trial::{run_trial_2d, run_trial_3d, TrialOptions, TrialResult};
