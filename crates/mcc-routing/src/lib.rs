//! # mcc-routing — fault-tolerant adaptive and minimal routing
//!
//! The routing layer of the Jiang–Wu–Wang (ICPP 2005) reproduction:
//!
//! * [`feasibility2`] / [`feasibility3`] — the *detection message* walks of
//!   Algorithm 3 step 1 and Algorithm 6 step 1: operational evaluation of
//!   Theorems 1 and 2 using only node-local status, hugging fault regions
//!   with positive-direction turns,
//! * [`policy`] — pluggable fully-adaptive selection policies (the paper
//!   lets "any fully adaptive and minimal routing process" pick among the
//!   surviving preferred directions),
//! * [`router2`] / [`router3`] — the two-phase routing processes
//!   (Algorithms 3 and 6): feasibility check at the source, then per-hop
//!   forwarding that never enters a detour area,
//! * [`baseline`] — comparison routers: greedy (no fault information) and
//!   rectangular/cuboid-block routing,
//! * [`trace`] — route outcomes, adaptivity and path-quality metrics,
//! * [`trial`] — single-trial experiment runners shared by the benchmark
//!   harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod feasibility2;
pub mod feasibility3;
pub mod policy;
pub mod router2;
pub mod router3;
pub mod trace;
pub mod trial;

pub use feasibility2::{detect_2d, Detection2};
pub use feasibility3::{detect_3d, Detection3};
pub use policy::Policy;
pub use router2::Router2;
pub use router3::Router3;
pub use trace::{RouteOutcome2, RouteOutcome3};
pub use trial::{run_trial_2d, run_trial_3d, TrialOptions, TrialResult};
