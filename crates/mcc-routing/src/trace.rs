//! Route outcomes and path-quality metrics.

use mesh_topo::{Path2, Path3};
use serde::{Deserialize, Serialize};

/// Why a routing attempt ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RouteResult {
    /// The message reached the destination over a minimal path.
    Delivered,
    /// The source-side check refused to activate routing (no minimal path,
    /// or an endpoint inside a fault region).
    Infeasible,
    /// The router entered a node with no allowed forwarding direction.
    /// Cannot happen with exact boundary information; measures the cost of
    /// weaker information models.
    Stuck,
}

/// Full record of one 2-D routing attempt.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteOutcome2 {
    /// How the attempt ended.
    pub result: RouteResult,
    /// The nodes visited (source only, if routing was not activated).
    pub path: Path2,
    /// Sum over hops of the number of allowed forwarding directions —
    /// `adaptivity()` gives the per-hop average.
    pub adaptivity_sum: usize,
    /// Hops spent by source-side detection messages.
    pub detection_hops: usize,
}

/// Full record of one 3-D routing attempt.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteOutcome3 {
    /// How the attempt ended.
    pub result: RouteResult,
    /// The nodes visited (source only, if routing was not activated).
    pub path: Path3,
    /// Sum over hops of the number of allowed forwarding directions.
    pub adaptivity_sum: usize,
    /// Nodes visited by source-side detection floods.
    pub detection_cost: usize,
}

impl RouteOutcome2 {
    /// True when the message was delivered.
    pub fn delivered(&self) -> bool {
        self.result == RouteResult::Delivered
    }

    /// Average number of allowed forwarding directions per hop (1.0 means
    /// the route was fully forced; 2.0 means every hop was free in 2-D).
    pub fn adaptivity(&self) -> f64 {
        if self.path.hops() == 0 {
            return 0.0;
        }
        self.adaptivity_sum as f64 / self.path.hops() as f64
    }
}

impl RouteOutcome3 {
    /// True when the message was delivered.
    pub fn delivered(&self) -> bool {
        self.result == RouteResult::Delivered
    }

    /// Average number of allowed forwarding directions per hop.
    pub fn adaptivity(&self) -> f64 {
        if self.path.hops() == 0 {
            return 0.0;
        }
        self.adaptivity_sum as f64 / self.path.hops() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::c2;

    #[test]
    fn adaptivity_math() {
        let o = RouteOutcome2 {
            result: RouteResult::Delivered,
            path: Path2::from_nodes(vec![c2(0, 0), c2(1, 0), c2(1, 1)]),
            adaptivity_sum: 3,
            detection_hops: 5,
        };
        assert!(o.delivered());
        assert!((o.adaptivity() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn zero_hop_adaptivity_is_zero() {
        let o = RouteOutcome2 {
            result: RouteResult::Infeasible,
            path: Path2::start(c2(0, 0)),
            adaptivity_sum: 0,
            detection_hops: 0,
        };
        assert_eq!(o.adaptivity(), 0.0);
        assert!(!o.delivered());
    }
}
