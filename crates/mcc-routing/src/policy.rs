//! Fully-adaptive selection policies.
//!
//! Step 2(c) of Algorithm 3/6: "apply any fully adaptive and minimal routing
//! process to pick up a forwarding direction from set F". The router
//! computes the surviving set `F`; a [`Policy`] picks one member. Policies
//! only ever see directions the router already proved harmless, so the
//! minimality guarantee is policy-independent — which these types make easy
//! to demonstrate experimentally.

use mesh_topo::{Dir2, Dir3, C2, C3};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A fully-adaptive forwarding-direction selection policy.
#[derive(Clone, Debug)]
pub enum Policy {
    /// Always the first allowed direction in `X < Y < Z` order
    /// (dimension-ordered, e-cube-like within the adaptive envelope).
    XFirst,
    /// The allowed direction with the largest remaining offset to the
    /// destination (keeps the RMP "fat", maximizing future adaptivity).
    Balanced,
    /// Alternate dimensions whenever possible (zig-zag; diagonal-ish paths).
    ZigZag {
        /// Index of the previously chosen axis, if any.
        last_axis: Option<usize>,
    },
    /// Uniformly random among the allowed directions (seeded).
    Random(SmallRng),
}

impl Policy {
    /// Dimension-ordered policy.
    pub fn x_first() -> Policy {
        Policy::XFirst
    }

    /// Largest-remaining-offset policy.
    pub fn balanced() -> Policy {
        Policy::Balanced
    }

    /// Dimension-alternating policy.
    pub fn zigzag() -> Policy {
        Policy::ZigZag { last_axis: None }
    }

    /// Seeded random policy.
    pub fn random(seed: u64) -> Policy {
        Policy::Random(SmallRng::seed_from_u64(seed))
    }

    /// Pick a forwarding direction among `allowed` (2-D).
    ///
    /// # Panics
    /// If `allowed` is empty — the router must not consult a policy with an
    /// empty candidate set.
    pub fn choose2(&mut self, u: C2, d: C2, allowed: &[Dir2]) -> Dir2 {
        assert!(
            !allowed.is_empty(),
            "policy consulted with empty direction set"
        );
        match self {
            Policy::XFirst => allowed[0],
            Policy::Balanced => *allowed
                .iter()
                .max_by_key(|dir| match dir {
                    Dir2::Xp => d.x - u.x,
                    Dir2::Yp => d.y - u.y,
                    _ => i32::MIN,
                })
                .expect("non-empty"),
            Policy::ZigZag { last_axis } => {
                let pick = allowed
                    .iter()
                    .find(|dir| Some(dir.axis().index()) != *last_axis)
                    .copied()
                    .unwrap_or(allowed[0]);
                *last_axis = Some(pick.axis().index());
                pick
            }
            Policy::Random(rng) => allowed[rng.gen_range(0..allowed.len())],
        }
    }

    /// Pick a forwarding direction among `allowed` (3-D).
    ///
    /// # Panics
    /// If `allowed` is empty.
    pub fn choose3(&mut self, u: C3, d: C3, allowed: &[Dir3]) -> Dir3 {
        assert!(
            !allowed.is_empty(),
            "policy consulted with empty direction set"
        );
        match self {
            Policy::XFirst => allowed[0],
            Policy::Balanced => *allowed
                .iter()
                .max_by_key(|dir| match dir {
                    Dir3::Xp => d.x - u.x,
                    Dir3::Yp => d.y - u.y,
                    Dir3::Zp => d.z - u.z,
                    _ => i32::MIN,
                })
                .expect("non-empty"),
            Policy::ZigZag { last_axis } => {
                let pick = allowed
                    .iter()
                    .find(|dir| Some(dir.axis().index()) != *last_axis)
                    .copied()
                    .unwrap_or(allowed[0]);
                *last_axis = Some(pick.axis().index());
                pick
            }
            Policy::Random(rng) => allowed[rng.gen_range(0..allowed.len())],
        }
    }

    /// All deterministic policies plus one random instance — convenient for
    /// "every policy stays minimal" sweeps.
    pub fn suite(seed: u64) -> Vec<Policy> {
        vec![
            Policy::x_first(),
            Policy::balanced(),
            Policy::zigzag(),
            Policy::random(seed),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::{c2, c3};

    #[test]
    fn x_first_is_deterministic() {
        let mut p = Policy::x_first();
        assert_eq!(
            p.choose2(c2(0, 0), c2(5, 5), &[Dir2::Xp, Dir2::Yp]),
            Dir2::Xp
        );
        assert_eq!(p.choose2(c2(0, 0), c2(5, 5), &[Dir2::Yp]), Dir2::Yp);
    }

    #[test]
    fn balanced_prefers_long_axis() {
        let mut p = Policy::balanced();
        assert_eq!(
            p.choose2(c2(0, 0), c2(1, 7), &[Dir2::Xp, Dir2::Yp]),
            Dir2::Yp
        );
        assert_eq!(
            p.choose3(c3(0, 0, 0), c3(2, 9, 4), &[Dir3::Xp, Dir3::Yp, Dir3::Zp]),
            Dir3::Yp
        );
    }

    #[test]
    fn zigzag_alternates() {
        let mut p = Policy::zigzag();
        let first = p.choose2(c2(0, 0), c2(5, 5), &[Dir2::Xp, Dir2::Yp]);
        let second = p.choose2(c2(1, 0), c2(5, 5), &[Dir2::Xp, Dir2::Yp]);
        assert_ne!(first.axis(), second.axis());
        // Falls back when only the same axis remains.
        let third = p.choose2(c2(1, 1), c2(5, 5), &[second]);
        assert_eq!(third, second);
    }

    #[test]
    fn random_is_seeded_and_in_set() {
        let mut p1 = Policy::random(9);
        let mut p2 = Policy::random(9);
        for _ in 0..20 {
            let a = p1.choose3(c3(0, 0, 0), c3(9, 9, 9), &[Dir3::Xp, Dir3::Yp, Dir3::Zp]);
            let b = p2.choose3(c3(0, 0, 0), c3(9, 9, 9), &[Dir3::Xp, Dir3::Yp, Dir3::Zp]);
            assert_eq!(a, b);
            assert!([Dir3::Xp, Dir3::Yp, Dir3::Zp].contains(&a));
        }
    }

    #[test]
    #[should_panic]
    fn empty_set_panics() {
        Policy::x_first().choose2(c2(0, 0), c2(1, 1), &[]);
    }
}
