//! Single-trial experiment runners.
//!
//! One *trial* = one mesh with injected faults plus one healthy
//! source/destination pair, evaluated under every model at once:
//!
//! * **oracle** — does a minimal path exist among the physical faults?
//! * **MCC** — the paper's condition (exact; equals the oracle),
//! * **RFB** — the rectangular/cuboid block model's condition,
//! * **greedy** — did an information-free adaptive walk deliver?
//!
//! plus routing metrics (hops, adaptivity, detection cost) for the models
//! that actually routed. The benchmark harness aggregates trials into the
//! tables of `EXPERIMENTS.md`.
//!
//! The per-trial functions here are thin wrappers over the prepared-mesh
//! pipeline of [`crate::prepared`]: each builds a throwaway
//! [`crate::prepared::PreparedMesh2`]/[`PreparedMesh3`] for its single
//! pair, so fresh and batched trials share one code path and cannot
//! drift. Callers evaluating many pairs against one fault configuration
//! should hold a prepared mesh themselves and amortize model
//! construction (see DESIGN.md §9).
//!
//! [`PreparedMesh3`]: crate::prepared::PreparedMesh3

use fault_model::mcc2::MccSet2;
use fault_model::mcc3::MccSet3;
use fault_model::oracle::{Useful2, Useful3};
use fault_model::{
    minimal_path_exists_2d_in, minimal_path_exists_3d_in, BorderPolicy, Labelling2, Labelling3,
};
use mesh_topo::{Mesh2D, Mesh3D, C2, C3};
use serde::{Deserialize, Serialize};

use crate::prepared::{PreparedMesh2, PreparedMesh3};

/// Aggregatable result of one routing trial.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct TrialResult {
    /// Ground truth: a minimal path exists among the faults.
    pub oracle_ok: bool,
    /// The MCC condition admitted the routing.
    pub mcc_ok: bool,
    /// The block-model condition admitted the routing.
    pub rfb_ok: bool,
    /// The greedy information-free router delivered.
    pub greedy_ok: bool,
    /// The MCC router delivered (only attempted when `mcc_ok` and both
    /// endpoints safe).
    pub mcc_delivered: bool,
    /// Hops of the MCC route (= `D(s,d)` when delivered).
    pub mcc_hops: usize,
    /// Mean allowed directions per hop of the MCC route.
    pub mcc_adaptivity: f64,
    /// Mean allowed directions per hop of the RFB route (when delivered).
    pub rfb_adaptivity: f64,
    /// Cost of the source detection (hops in 2-D, visited nodes in 3-D).
    pub detection_cost: usize,
    /// Both endpoints were safe under the MCC labelling.
    pub endpoints_safe: bool,
}

impl TrialResult {
    /// Field-for-field equality with the floats compared by bit pattern.
    ///
    /// This is the single source of the fresh ≡ prepared equivalence
    /// contract: the property battery (`tests/prepared_equiv.rs`) and the
    /// snapshot-refusal gate of `mcc-bench`'s `bench_trials` binary both
    /// go through it, so a field added here cannot silently escape the
    /// gates.
    pub fn bit_identical(&self, other: &TrialResult) -> bool {
        let TrialResult {
            oracle_ok,
            mcc_ok,
            rfb_ok,
            greedy_ok,
            mcc_delivered,
            mcc_hops,
            mcc_adaptivity,
            rfb_adaptivity,
            detection_cost,
            endpoints_safe,
        } = *self;
        oracle_ok == other.oracle_ok
            && mcc_ok == other.mcc_ok
            && rfb_ok == other.rfb_ok
            && greedy_ok == other.greedy_ok
            && mcc_delivered == other.mcc_delivered
            && mcc_hops == other.mcc_hops
            && mcc_adaptivity.to_bits() == other.mcc_adaptivity.to_bits()
            && rfb_adaptivity.to_bits() == other.rfb_adaptivity.to_bits()
            && detection_cost == other.detection_cost
            && endpoints_safe == other.endpoints_safe
    }
}

/// Knobs shared by the trial runners, threaded down from the scenario
/// layer: which border policy the labelling uses and which models are
/// evaluated at all. Skipping a model skips its computation beyond the
/// parts other columns need — the labelling always runs (the oracle,
/// greedy baseline and `endpoints_safe` depend on it), but `eval_mcc:
/// false` skips MCC extraction, the existence condition, detection and
/// routing, and `eval_rfb: false` skips the block model entirely.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrialOptions {
    /// Border policy for the MCC labelling.
    pub border: BorderPolicy,
    /// Evaluate the MCC condition and router.
    pub eval_mcc: bool,
    /// Evaluate the rectangular/cuboid block baseline.
    pub eval_rfb: bool,
    /// Evaluate the information-free greedy baseline.
    pub eval_greedy: bool,
}

impl Default for TrialOptions {
    fn default() -> Self {
        TrialOptions {
            border: BorderPolicy::BorderSafe,
            eval_mcc: true,
            eval_rfb: true,
            eval_greedy: true,
        }
    }
}

/// Run one 2-D trial with the paper-faithful defaults (border-safe
/// labelling, all models evaluated).
///
/// # Panics
/// If either endpoint is faulty.
pub fn run_trial_2d(mesh: &Mesh2D, s: C2, d: C2, policy_seed: u64) -> TrialResult {
    run_trial_2d_with(mesh, s, d, policy_seed, &TrialOptions::default())
}

/// Run one 2-D trial for arbitrary (healthy) mesh-coordinate endpoints.
///
/// Builds a throwaway [`PreparedMesh2`] for this single pair; batch
/// callers should prepare once and reuse it.
///
/// # Panics
/// If either endpoint is faulty.
pub fn run_trial_2d_with(
    mesh: &Mesh2D,
    s: C2,
    d: C2,
    policy_seed: u64,
    opts: &TrialOptions,
) -> TrialResult {
    PreparedMesh2::new(mesh, *opts).run_trial(s, d, policy_seed)
}

/// The MCC admission gate, shared verbatim by the fresh and prepared
/// paths in both dimensions: the model admits the routing iff MCC
/// evaluation was requested (`mccs` computed) and the existence condition
/// holds for the canonical pair.
pub(crate) fn mcc_ok_2d(
    lab: &Labelling2,
    mccs: Option<&MccSet2>,
    cs: C2,
    cd: C2,
    useful: &mut Useful2,
) -> bool {
    mccs.is_some_and(|m| minimal_path_exists_2d_in(lab, m, cs, cd, useful).exists())
}

/// 3-D twin of [`mcc_ok_2d`] (the 3-D condition needs no MCC set, but the
/// gate is the same: evaluate only when the model was requested).
pub(crate) fn mcc_ok_3d(
    lab: &Labelling3,
    mccs: Option<&MccSet3>,
    cs: C3,
    cd: C3,
    useful: &mut Useful3,
) -> bool {
    mccs.is_some() && minimal_path_exists_3d_in(lab, cs, cd, useful).exists()
}

/// Run one 3-D trial with the paper-faithful defaults (border-safe
/// labelling, all models evaluated).
///
/// # Panics
/// If either endpoint is faulty.
pub fn run_trial_3d(mesh: &Mesh3D, s: C3, d: C3, policy_seed: u64) -> TrialResult {
    run_trial_3d_with(mesh, s, d, policy_seed, &TrialOptions::default())
}

/// Run one 3-D trial for arbitrary (healthy) mesh-coordinate endpoints.
///
/// Builds a throwaway [`PreparedMesh3`] for this single pair; batch
/// callers should prepare once and reuse it.
///
/// # Panics
/// If either endpoint is faulty.
pub fn run_trial_3d_with(
    mesh: &Mesh3D,
    s: C3,
    d: C3,
    policy_seed: u64,
    opts: &TrialOptions,
) -> TrialResult {
    PreparedMesh3::new(mesh, *opts).run_trial(s, d, policy_seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::{c2, c3};
    use mesh_topo::FaultSpec;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn trial_orderings_hold_2d() {
        let mut rng = SmallRng::seed_from_u64(7);
        for seed in 0..60u64 {
            let mut mesh = Mesh2D::new(16, 16);
            let s = c2(rng.gen_range(0..16), rng.gen_range(0..16));
            let mut d = c2(rng.gen_range(0..16), rng.gen_range(0..16));
            if d == s {
                d = c2((s.x + 1) % 16, s.y);
            }
            FaultSpec::uniform(14, seed).inject_2d(&mut mesh, &[s, d]);
            let t = run_trial_2d(&mesh, s, d, seed);
            // MCC condition is exact.
            assert_eq!(t.mcc_ok, t.oracle_ok, "seed {seed}");
            // The block model is conservative.
            assert!(!t.rfb_ok || t.oracle_ok, "seed {seed}");
            // Greedy delivery implies a minimal path existed.
            assert!(!t.greedy_ok || t.oracle_ok, "seed {seed}");
            // The router delivers whenever endpoints are safe and a path
            // exists.
            if t.endpoints_safe && t.oracle_ok {
                assert!(t.mcc_delivered, "seed {seed}");
            }
        }
    }

    #[test]
    fn trial_orderings_hold_3d() {
        let mut rng = SmallRng::seed_from_u64(11);
        for seed in 0..30u64 {
            let mut mesh = Mesh3D::kary(8);
            let s = c3(
                rng.gen_range(0..8),
                rng.gen_range(0..8),
                rng.gen_range(0..8),
            );
            let mut d = c3(
                rng.gen_range(0..8),
                rng.gen_range(0..8),
                rng.gen_range(0..8),
            );
            if d == s {
                d = c3((s.x + 1) % 8, s.y, s.z);
            }
            FaultSpec::uniform(25, seed).inject_3d(&mut mesh, &[s, d]);
            let t = run_trial_3d(&mesh, s, d, seed);
            assert_eq!(t.mcc_ok, t.oracle_ok, "seed {seed}");
            assert!(!t.rfb_ok || t.oracle_ok, "seed {seed}");
            assert!(!t.greedy_ok || t.oracle_ok, "seed {seed}");
            if t.endpoints_safe && t.oracle_ok {
                assert!(t.mcc_delivered, "seed {seed}");
                assert_eq!(t.mcc_hops as u32, s.dist(d), "seed {seed}");
            }
        }
    }

    #[test]
    fn fault_free_trial() {
        let mesh = Mesh2D::new(8, 8);
        let t = run_trial_2d(&mesh, c2(7, 7), c2(0, 0), 1);
        assert!(t.oracle_ok && t.mcc_ok && t.rfb_ok && t.greedy_ok && t.mcc_delivered);
        assert_eq!(t.mcc_hops, 14);
    }

    #[test]
    fn fault_free_torus_routes_the_shorter_arcs() {
        // On the torus the corner pair is two wrap hops away, not 14.
        let mesh = Mesh2D::torus(8, 8);
        let t = run_trial_2d(&mesh, c2(7, 7), c2(0, 0), 1);
        assert!(t.oracle_ok && t.mcc_ok && t.rfb_ok && t.greedy_ok && t.mcc_delivered);
        assert_eq!(t.mcc_hops as u32, mesh.dist(c2(7, 7), c2(0, 0)));
        assert_eq!(t.mcc_hops, 2);
    }

    #[test]
    fn trial_orderings_hold_on_torus_2d() {
        let mut rng = SmallRng::seed_from_u64(41);
        let mut delivered = 0;
        for seed in 0..60u64 {
            let mut mesh = Mesh2D::torus(12, 12);
            FaultSpec::uniform(12, seed).inject_2d(&mut mesh, &[]);
            let s = c2(rng.gen_range(0..12), rng.gen_range(0..12));
            let mut d = c2(rng.gen_range(0..12), rng.gen_range(0..12));
            if d == s {
                d = c2((s.x + 1) % 12, s.y);
            }
            if !mesh.is_healthy(s) || !mesh.is_healthy(d) {
                continue;
            }
            let t = run_trial_2d(&mesh, s, d, seed);
            // MCC condition stays exact on the torus.
            assert_eq!(t.mcc_ok, t.oracle_ok, "seed {seed}");
            // The block model stays conservative.
            assert!(!t.rfb_ok || t.oracle_ok, "seed {seed}");
            // Greedy delivery implies a minimal path existed.
            assert!(!t.greedy_ok || t.oracle_ok, "seed {seed}");
            if t.endpoints_safe && t.oracle_ok {
                assert!(t.mcc_delivered, "seed {seed}");
                // Delivered routes take the Lee-distance number of hops.
                assert_eq!(t.mcc_hops as u32, mesh.dist(s, d), "seed {seed}");
                delivered += 1;
            }
        }
        assert!(delivered > 20, "delivered only {delivered}");
    }

    #[test]
    fn trial_orderings_hold_on_torus_3d() {
        let mut rng = SmallRng::seed_from_u64(43);
        let mut delivered = 0;
        for seed in 0..30u64 {
            let mut mesh = Mesh3D::torus_kary(6);
            FaultSpec::uniform(16, seed).inject_3d(&mut mesh, &[]);
            let s = c3(
                rng.gen_range(0..6),
                rng.gen_range(0..6),
                rng.gen_range(0..6),
            );
            let mut d = c3(
                rng.gen_range(0..6),
                rng.gen_range(0..6),
                rng.gen_range(0..6),
            );
            if d == s {
                d = c3((s.x + 1) % 6, s.y, s.z);
            }
            if !mesh.is_healthy(s) || !mesh.is_healthy(d) {
                continue;
            }
            let t = run_trial_3d(&mesh, s, d, seed);
            assert_eq!(t.mcc_ok, t.oracle_ok, "seed {seed}");
            assert!(!t.rfb_ok || t.oracle_ok, "seed {seed}");
            assert!(!t.greedy_ok || t.oracle_ok, "seed {seed}");
            if t.endpoints_safe && t.oracle_ok {
                assert!(t.mcc_delivered, "seed {seed}");
                assert_eq!(t.mcc_hops as u32, mesh.dist(s, d), "seed {seed}");
                delivered += 1;
            }
        }
        assert!(delivered > 10, "delivered only {delivered}");
    }
}
