//! Single-trial experiment runners.
//!
//! One *trial* = one mesh with injected faults plus one healthy
//! source/destination pair, evaluated under every model at once:
//!
//! * **oracle** — does a minimal path exist among the physical faults?
//! * **MCC** — the paper's condition (exact; equals the oracle),
//! * **RFB** — the rectangular/cuboid block model's condition,
//! * **greedy** — did an information-free adaptive walk deliver?
//!
//! plus routing metrics (hops, adaptivity, detection cost) for the models
//! that actually routed. The benchmark harness aggregates trials into the
//! tables of `EXPERIMENTS.md`.

use fault_model::mcc2::MccSet2;
use fault_model::mcc3::MccSet3;
use fault_model::{
    minimal_path_exists_2d, minimal_path_exists_3d, oracle, BorderPolicy, FaultBlocks2,
    FaultBlocks3, Labelling2, Labelling3,
};
use mesh_topo::{Frame2, Frame3, Mesh2D, Mesh3D, C2, C3};
use serde::{Deserialize, Serialize};

use crate::baseline;
use crate::policy::Policy;
use crate::router2::Router2;
use crate::router3::Router3;
use crate::trace::RouteResult;

/// Aggregatable result of one routing trial.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct TrialResult {
    /// Ground truth: a minimal path exists among the faults.
    pub oracle_ok: bool,
    /// The MCC condition admitted the routing.
    pub mcc_ok: bool,
    /// The block-model condition admitted the routing.
    pub rfb_ok: bool,
    /// The greedy information-free router delivered.
    pub greedy_ok: bool,
    /// The MCC router delivered (only attempted when `mcc_ok` and both
    /// endpoints safe).
    pub mcc_delivered: bool,
    /// Hops of the MCC route (= `D(s,d)` when delivered).
    pub mcc_hops: usize,
    /// Mean allowed directions per hop of the MCC route.
    pub mcc_adaptivity: f64,
    /// Mean allowed directions per hop of the RFB route (when delivered).
    pub rfb_adaptivity: f64,
    /// Cost of the source detection (hops in 2-D, visited nodes in 3-D).
    pub detection_cost: usize,
    /// Both endpoints were safe under the MCC labelling.
    pub endpoints_safe: bool,
}

/// Knobs shared by the trial runners, threaded down from the scenario
/// layer: which border policy the labelling uses and which models are
/// evaluated at all. Skipping a model skips its computation beyond the
/// parts other columns need — the labelling always runs (the oracle,
/// greedy baseline and `endpoints_safe` depend on it), but `eval_mcc:
/// false` skips MCC extraction, the existence condition, detection and
/// routing, and `eval_rfb: false` skips the block model entirely.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrialOptions {
    /// Border policy for the MCC labelling.
    pub border: BorderPolicy,
    /// Evaluate the MCC condition and router.
    pub eval_mcc: bool,
    /// Evaluate the rectangular/cuboid block baseline.
    pub eval_rfb: bool,
    /// Evaluate the information-free greedy baseline.
    pub eval_greedy: bool,
}

impl Default for TrialOptions {
    fn default() -> Self {
        TrialOptions {
            border: BorderPolicy::BorderSafe,
            eval_mcc: true,
            eval_rfb: true,
            eval_greedy: true,
        }
    }
}

/// Run one 2-D trial with the paper-faithful defaults (border-safe
/// labelling, all models evaluated).
///
/// # Panics
/// If either endpoint is faulty.
pub fn run_trial_2d(mesh: &Mesh2D, s: C2, d: C2, policy_seed: u64) -> TrialResult {
    run_trial_2d_with(mesh, s, d, policy_seed, &TrialOptions::default())
}

/// Run one 2-D trial for arbitrary (healthy) mesh-coordinate endpoints.
///
/// # Panics
/// If either endpoint is faulty.
pub fn run_trial_2d_with(
    mesh: &Mesh2D,
    s: C2,
    d: C2,
    policy_seed: u64,
    opts: &TrialOptions,
) -> TrialResult {
    assert!(
        mesh.is_healthy(s) && mesh.is_healthy(d),
        "trial endpoints must be healthy"
    );
    let frame = Frame2::for_pair(mesh, s, d);
    let (cs, cd) = (frame.to_canon(s), frame.to_canon(d));
    let lab = Labelling2::compute(mesh, frame, opts.border);
    let mccs = opts.eval_mcc.then(|| MccSet2::compute(&lab));
    let blocks = opts.eval_rfb.then(|| FaultBlocks2::compute(mesh));

    let oracle_ok = oracle::reachable_2d(cs, cd, |c| {
        let m = frame.from_canon(c);
        !mesh.contains(m) || mesh.is_faulty(m)
    });
    let mcc_ok = mccs
        .as_ref()
        .is_some_and(|m| minimal_path_exists_2d(&lab, m, cs, cd).exists());
    let rfb_ok = blocks
        .as_ref()
        .is_some_and(|b| b.minimal_path_exists(mesh, s, d));
    let endpoints_safe = lab.is_safe(cs) && lab.is_safe(cd);

    let mut result = TrialResult {
        oracle_ok,
        mcc_ok,
        rfb_ok,
        endpoints_safe,
        ..TrialResult::default()
    };

    if opts.eval_greedy {
        let greedy = baseline::route_greedy_2d(&lab, cs, cd, &mut Policy::random(policy_seed));
        result.greedy_ok = greedy.result == RouteResult::Delivered;
    }

    if endpoints_safe {
        if let Some(mccs) = &mccs {
            let router = Router2::new(&lab, mccs);
            let out = router.route(cs, cd, &mut Policy::random(policy_seed ^ 0x9e37_79b9));
            result.detection_cost = out.detection_hops;
            if out.delivered() {
                result.mcc_delivered = true;
                result.mcc_hops = out.path.hops();
                result.mcc_adaptivity = out.adaptivity();
            }
        }
    }
    if rfb_ok {
        let blocks = blocks.as_ref().expect("rfb_ok implies blocks computed");
        let out =
            baseline::route_rfb_2d(blocks, mesh, s, d, &mut Policy::random(policy_seed ^ 0x51));
        if out.delivered() {
            result.rfb_adaptivity = out.adaptivity();
        }
    }
    result
}

/// Run one 3-D trial with the paper-faithful defaults (border-safe
/// labelling, all models evaluated).
///
/// # Panics
/// If either endpoint is faulty.
pub fn run_trial_3d(mesh: &Mesh3D, s: C3, d: C3, policy_seed: u64) -> TrialResult {
    run_trial_3d_with(mesh, s, d, policy_seed, &TrialOptions::default())
}

/// Run one 3-D trial for arbitrary (healthy) mesh-coordinate endpoints.
///
/// # Panics
/// If either endpoint is faulty.
pub fn run_trial_3d_with(
    mesh: &Mesh3D,
    s: C3,
    d: C3,
    policy_seed: u64,
    opts: &TrialOptions,
) -> TrialResult {
    assert!(
        mesh.is_healthy(s) && mesh.is_healthy(d),
        "trial endpoints must be healthy"
    );
    let frame = Frame3::for_pair(mesh, s, d);
    let (cs, cd) = (frame.to_canon(s), frame.to_canon(d));
    let lab = Labelling3::compute(mesh, frame, opts.border);
    let mccs = opts.eval_mcc.then(|| MccSet3::compute(&lab));
    let blocks = opts.eval_rfb.then(|| FaultBlocks3::compute(mesh));

    let oracle_ok = oracle::reachable_3d(cs, cd, |c| {
        let m = frame.from_canon(c);
        !mesh.contains(m) || mesh.is_faulty(m)
    });
    let mcc_ok = opts.eval_mcc && minimal_path_exists_3d(&lab, cs, cd).exists();
    let rfb_ok = blocks
        .as_ref()
        .is_some_and(|b| b.minimal_path_exists(mesh, s, d));
    let endpoints_safe = lab.is_safe(cs) && lab.is_safe(cd);

    let mut result = TrialResult {
        oracle_ok,
        mcc_ok,
        rfb_ok,
        endpoints_safe,
        ..TrialResult::default()
    };

    if opts.eval_greedy {
        let greedy = baseline::route_greedy_3d(&lab, cs, cd, &mut Policy::random(policy_seed));
        result.greedy_ok = greedy.result == RouteResult::Delivered;
    }

    if endpoints_safe {
        if let Some(mccs) = &mccs {
            let router = Router3::new(&lab, mccs);
            let out = router.route(cs, cd, &mut Policy::random(policy_seed ^ 0x9e37_79b9));
            result.detection_cost = out.detection_cost;
            if out.delivered() {
                result.mcc_delivered = true;
                result.mcc_hops = out.path.hops();
                result.mcc_adaptivity = out.adaptivity();
            }
        }
    }
    if rfb_ok {
        let blocks = blocks.as_ref().expect("rfb_ok implies blocks computed");
        let out =
            baseline::route_rfb_3d(blocks, mesh, s, d, &mut Policy::random(policy_seed ^ 0x51));
        if out.delivered() {
            result.rfb_adaptivity = out.adaptivity();
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::{c2, c3};
    use mesh_topo::FaultSpec;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn trial_orderings_hold_2d() {
        let mut rng = SmallRng::seed_from_u64(7);
        for seed in 0..60u64 {
            let mut mesh = Mesh2D::new(16, 16);
            let s = c2(rng.gen_range(0..16), rng.gen_range(0..16));
            let mut d = c2(rng.gen_range(0..16), rng.gen_range(0..16));
            if d == s {
                d = c2((s.x + 1) % 16, s.y);
            }
            FaultSpec::uniform(14, seed).inject_2d(&mut mesh, &[s, d]);
            let t = run_trial_2d(&mesh, s, d, seed);
            // MCC condition is exact.
            assert_eq!(t.mcc_ok, t.oracle_ok, "seed {seed}");
            // The block model is conservative.
            assert!(!t.rfb_ok || t.oracle_ok, "seed {seed}");
            // Greedy delivery implies a minimal path existed.
            assert!(!t.greedy_ok || t.oracle_ok, "seed {seed}");
            // The router delivers whenever endpoints are safe and a path
            // exists.
            if t.endpoints_safe && t.oracle_ok {
                assert!(t.mcc_delivered, "seed {seed}");
            }
        }
    }

    #[test]
    fn trial_orderings_hold_3d() {
        let mut rng = SmallRng::seed_from_u64(11);
        for seed in 0..30u64 {
            let mut mesh = Mesh3D::kary(8);
            let s = c3(
                rng.gen_range(0..8),
                rng.gen_range(0..8),
                rng.gen_range(0..8),
            );
            let mut d = c3(
                rng.gen_range(0..8),
                rng.gen_range(0..8),
                rng.gen_range(0..8),
            );
            if d == s {
                d = c3((s.x + 1) % 8, s.y, s.z);
            }
            FaultSpec::uniform(25, seed).inject_3d(&mut mesh, &[s, d]);
            let t = run_trial_3d(&mesh, s, d, seed);
            assert_eq!(t.mcc_ok, t.oracle_ok, "seed {seed}");
            assert!(!t.rfb_ok || t.oracle_ok, "seed {seed}");
            assert!(!t.greedy_ok || t.oracle_ok, "seed {seed}");
            if t.endpoints_safe && t.oracle_ok {
                assert!(t.mcc_delivered, "seed {seed}");
                assert_eq!(t.mcc_hops as u32, s.dist(d), "seed {seed}");
            }
        }
    }

    #[test]
    fn fault_free_trial() {
        let mesh = Mesh2D::new(8, 8);
        let t = run_trial_2d(&mesh, c2(7, 7), c2(0, 0), 1);
        assert!(t.oracle_ok && t.mcc_ok && t.rfb_ok && t.greedy_ok && t.mcc_delivered);
        assert_eq!(t.mcc_hops, 14);
    }
}
