//! Algorithm 6 step 1 — feasibility detection in 3-D meshes.
//!
//! Three detection floods are sent from the source along the three surfaces
//! of the Region of Minimal Paths (RMP):
//!
//! * the `(-X)`-surface flood propagates along `+Y` and `+Z`, makes `+X`
//!   turns around fault regions, and succeeds when it reaches the
//!   `y = yd` face of the RMP,
//! * the `(-Y)`-surface flood propagates along `+X`/`+Z` with `+Y` turns,
//!   targeting the `z = zd` face,
//! * the `(-Z)`-surface flood propagates along `+X`/`+Y` with `+Z` turns,
//!   targeting the `x = xd` face.
//!
//! A minimal path exists iff all three floods succeed — the operational form
//! of Theorem 2, property-tested against the semantic condition.

use std::collections::VecDeque;

use fault_model::Labelling3;
use mesh_topo::{Axis3, NodeSet, NodeSpace3, C3};
use serde::{Deserialize, Serialize};

/// Result of the source feasibility check in 3-D.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Detection3 {
    /// The `(-X)`-surface flood reached the `y = yd` face.
    pub x_surface_ok: bool,
    /// The `(-Y)`-surface flood reached the `z = zd` face.
    pub y_surface_ok: bool,
    /// The `(-Z)`-surface flood reached the `x = xd` face.
    pub z_surface_ok: bool,
    /// Total nodes visited by the three floods (detection message cost).
    pub visited: usize,
}

impl Detection3 {
    /// True iff routing may be activated (all three floods succeeded).
    pub fn feasible(self) -> bool {
        self.x_surface_ok && self.y_surface_ok && self.z_surface_ok
    }
}

/// Reusable state of one detection flood: the visited bitset over the RMP
/// box and the BFS queue. One instance carried across many detections
/// keeps the flood allocation-free in steady state (the bitset grows to
/// the largest box seen, the queue to the widest frontier).
#[derive(Clone, Debug)]
pub struct FloodScratch3 {
    seen: NodeSet,
    queue: VecDeque<C3>,
}

impl FloodScratch3 {
    /// Fresh, empty flood state.
    pub fn new() -> FloodScratch3 {
        FloodScratch3 {
            seen: NodeSet::new(1),
            queue: VecDeque::new(),
        }
    }
}

impl Default for FloodScratch3 {
    fn default() -> FloodScratch3 {
        FloodScratch3::new()
    }
}

/// Run the three surface floods for canonical safe `s ≤ d`.
///
/// # Panics
/// If `s` does not precede `d` componentwise, or an endpoint is unsafe.
pub fn detect_3d(lab: &Labelling3, s: C3, d: C3) -> Detection3 {
    detect_3d_in(lab, s, d, &mut FloodScratch3::new())
}

/// [`detect_3d`] with caller-provided flood state (see [`FloodScratch3`]).
///
/// # Panics
/// If `s` does not precede `d` componentwise, or an endpoint is unsafe.
pub fn detect_3d_in(lab: &Labelling3, s: C3, d: C3, scratch: &mut FloodScratch3) -> Detection3 {
    assert!(s.dominated_by(d), "detection requires canonical s <= d");
    assert!(
        lab.is_safe(s) && lab.is_safe(d),
        "detection requires safe endpoints; triage labelled endpoints first"
    );
    let mut visited = 0;
    // Flood main axes / detour axis / target face, per the paper's pairing.
    let x_surface_ok = flood(
        lab,
        s,
        d,
        [Axis3::Y, Axis3::Z],
        Axis3::X,
        Axis3::Y,
        &mut visited,
        scratch,
    );
    let y_surface_ok = flood(
        lab,
        s,
        d,
        [Axis3::X, Axis3::Z],
        Axis3::Y,
        Axis3::Z,
        &mut visited,
        scratch,
    );
    let z_surface_ok = flood(
        lab,
        s,
        d,
        [Axis3::X, Axis3::Y],
        Axis3::Z,
        Axis3::X,
        &mut visited,
        scratch,
    );
    Detection3 {
        x_surface_ok,
        y_surface_ok,
        z_surface_ok,
        visited,
    }
}

/// Surface flood: breadth-first propagation from `s` over safe nodes of the
/// RMP. Moves along the two `main` axes are always allowed; a move along
/// the `detour` axis is taken only by a node with a blocked `main` move
/// (the "+turn" of the paper). Succeeds upon reaching the face where the
/// `target` coordinate equals the destination's.
///
/// The visited map is a flat `NodeSet` bitset over the `[s, d]` RMP box
/// (the flood never leaves it), so per-detection cost scales with the
/// routing box, not the whole mesh — and no coordinate is ever re-hashed.
/// Both the bitset and the queue live in the caller's [`FloodScratch3`].
#[allow(clippy::too_many_arguments)] // axis roles + counters are clearest flat
fn flood(
    lab: &Labelling3,
    s: C3,
    d: C3,
    main: [Axis3; 2],
    detour: Axis3,
    target: Axis3,
    visited_count: &mut usize,
    scratch: &mut FloodScratch3,
) -> bool {
    if s.get(target) == d.get(target) {
        return true;
    }
    let space = NodeSpace3::new(d.x - s.x + 1, d.y - s.y + 1, d.z - s.z + 1);
    let seen = &mut scratch.seen;
    let queue = &mut scratch.queue;
    seen.reset(space.len());
    queue.clear();
    seen.insert(space.index(C3::ORIGIN));
    queue.push_back(s);
    while let Some(u) = queue.pop_front() {
        *visited_count += 1;
        let mut any_main_blocked = false;
        for axis in main {
            if u.get(axis) >= d.get(axis) {
                continue; // face of the RMP along this axis
            }
            let v = u.step(axis.pos());
            if lab.is_safe(v) {
                if v.get(target) == d.get(target) {
                    return true;
                }
                if seen.insert(space.index(v - s)) {
                    queue.push_back(v);
                }
            } else {
                any_main_blocked = true;
            }
        }
        if any_main_blocked && u.get(detour) < d.get(detour) {
            let v = u.step(detour.pos());
            if lab.is_safe(v) {
                if v.get(target) == d.get(target) {
                    return true;
                }
                if seen.insert(space.index(v - s)) {
                    queue.push_back(v);
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_model::BorderPolicy;
    use mesh_topo::coord::c3;
    use mesh_topo::{Frame3, Mesh3D};

    fn lab_of(faults: &[C3], k: i32) -> Labelling3 {
        let mut mesh = Mesh3D::kary(k);
        for &f in faults {
            mesh.inject_fault(f);
        }
        Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe)
    }

    #[test]
    fn open_mesh_feasible() {
        let lab = lab_of(&[], 6);
        let det = detect_3d(&lab, c3(0, 0, 0), c3(5, 5, 5));
        assert!(det.feasible());
        assert!(det.visited > 0);
    }

    #[test]
    fn line_rmp_block_detected() {
        let lab = lab_of(&[c3(0, 0, 3)], 8);
        let det = detect_3d(&lab, c3(0, 0, 0), c3(0, 0, 6));
        assert!(!det.feasible());
    }

    #[test]
    fn plane_wall_detected() {
        let mut faults = Vec::new();
        for x in 0..4 {
            for y in 0..4 {
                faults.push(c3(x, y, 2));
            }
        }
        let lab = lab_of(&faults, 8);
        assert!(!detect_3d(&lab, c3(0, 0, 0), c3(3, 3, 4)).feasible());
        assert!(detect_3d(&lab, c3(0, 0, 0), c3(4, 3, 4)).feasible());
    }

    #[test]
    fn floods_agree_with_semantic_condition_randomized() {
        use fault_model::{minimal_path_exists_3d, Existence3};
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(23);
        let mut checked = 0;
        for trial in 0..400 {
            let mut mesh = Mesh3D::kary(7);
            for _ in 0..rng.gen_range(0..24) {
                let c = c3(
                    rng.gen_range(0..7),
                    rng.gen_range(0..7),
                    rng.gen_range(0..7),
                );
                if mesh.is_healthy(c) {
                    mesh.inject_fault(c);
                }
            }
            let lab = Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
            let a = c3(
                rng.gen_range(0..7),
                rng.gen_range(0..7),
                rng.gen_range(0..7),
            );
            let b = c3(
                rng.gen_range(0..7),
                rng.gen_range(0..7),
                rng.gen_range(0..7),
            );
            let s = c3(a.x.min(b.x), a.y.min(b.y), a.z.min(b.z));
            let d = c3(a.x.max(b.x), a.y.max(b.y), a.z.max(b.z));
            if !lab.is_safe(s) || !lab.is_safe(d) {
                continue;
            }
            checked += 1;
            let semantic = minimal_path_exists_3d(&lab, s, d) == Existence3::Exists;
            let operational = detect_3d(&lab, s, d).feasible();
            assert_eq!(
                semantic,
                operational,
                "trial {trial}: flood/condition mismatch s={s} d={d} faults={:?}",
                mesh.faults()
            );
        }
        assert!(checked > 150, "too few safe-endpoint trials: {checked}");
    }

    #[test]
    fn degenerate_pairs() {
        let lab = lab_of(&[c3(4, 4, 4)], 6);
        assert!(detect_3d(&lab, c3(1, 1, 1), c3(1, 1, 1)).feasible());
        assert!(detect_3d(&lab, c3(0, 0, 0), c3(5, 0, 0)).feasible());
    }

    #[test]
    #[should_panic]
    fn unsafe_endpoint_panics() {
        let lab = lab_of(&[c3(3, 3, 3)], 8);
        detect_3d(&lab, c3(0, 0, 0), c3(3, 3, 3));
    }
}
