//! Algorithm 6 step 1 — feasibility detection in 3-D meshes.
//!
//! Three detection floods are sent from the source along the three surfaces
//! of the Region of Minimal Paths (RMP):
//!
//! * the `(-X)`-surface flood propagates along `+Y` and `+Z`, makes `+X`
//!   turns around fault regions, and succeeds when it reaches the
//!   `y = yd` face of the RMP,
//! * the `(-Y)`-surface flood propagates along `+X`/`+Z` with `+Y` turns,
//!   targeting the `z = zd` face,
//! * the `(-Z)`-surface flood propagates along `+X`/`+Y` with `+Z` turns,
//!   targeting the `x = xd` face.
//!
//! A minimal path exists iff all three floods succeed — the operational form
//! of Theorem 2, property-tested against the semantic condition.

use std::collections::VecDeque;

use fault_model::Labelling3;
use mesh_topo::{Axis3, NodeSet, NodeSpace3, Parallelism, C3};
use serde::{Deserialize, Serialize};

/// Result of the source feasibility check in 3-D.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Detection3 {
    /// The `(-X)`-surface flood reached the `y = yd` face.
    pub x_surface_ok: bool,
    /// The `(-Y)`-surface flood reached the `z = zd` face.
    pub y_surface_ok: bool,
    /// The `(-Z)`-surface flood reached the `x = xd` face.
    pub z_surface_ok: bool,
    /// Total nodes visited by the three floods (detection message cost).
    pub visited: usize,
}

impl Detection3 {
    /// True iff routing may be activated (all three floods succeeded).
    pub fn feasible(self) -> bool {
        self.x_surface_ok && self.y_surface_ok && self.z_surface_ok
    }
}

/// State of one detection flood: the visited bitset over the RMP box and
/// the BFS queue.
#[derive(Clone, Debug)]
struct FloodLane {
    seen: NodeSet,
    queue: VecDeque<C3>,
}

impl FloodLane {
    fn new() -> FloodLane {
        FloodLane {
            seen: NodeSet::new(1),
            queue: VecDeque::new(),
        }
    }
}

/// Reusable flood state for [`detect_3d_in`]. One instance carried across
/// many detections keeps the floods allocation-free in steady state (each
/// bitset grows to the largest box seen, each queue to the widest
/// frontier).
///
/// Holds one lane per surface flood plus a thread budget: with
/// [`FloodScratch3::parallel`] and a budget of two or more threads, the
/// three floods of a detection run concurrently on scoped threads, one
/// lane each. Each flood is an independent BFS with its own visited set
/// and per-flood visit count (summed in fixed x, y, z order), so the
/// parallel detection is **bit-for-bit equal** to the sequential one. A
/// sequential scratch runs all three floods through lane 0, preserving
/// the single-bitset memory footprint of the original.
#[derive(Clone, Debug)]
pub struct FloodScratch3 {
    lanes: [FloodLane; 3],
    parallelism: Parallelism,
}

impl FloodScratch3 {
    /// Fresh, empty, sequential flood state.
    pub fn new() -> FloodScratch3 {
        FloodScratch3::parallel(Parallelism::SEQ)
    }

    /// Fresh flood state that fans the three surface floods out over
    /// scoped threads when `parallelism` resolves to two or more (and the
    /// RMP box is large enough to pay for the spawns).
    pub fn parallel(parallelism: Parallelism) -> FloodScratch3 {
        FloodScratch3 {
            lanes: [FloodLane::new(), FloodLane::new(), FloodLane::new()],
            parallelism,
        }
    }
}

impl Default for FloodScratch3 {
    fn default() -> FloodScratch3 {
        FloodScratch3::new()
    }
}

/// Run the three surface floods for canonical safe `s ≤ d`.
///
/// # Panics
/// If `s` does not precede `d` componentwise, or an endpoint is unsafe.
pub fn detect_3d(lab: &Labelling3, s: C3, d: C3) -> Detection3 {
    detect_3d_in(lab, s, d, &mut FloodScratch3::new())
}

/// [`detect_3d`] with caller-provided flood state (see [`FloodScratch3`]).
///
/// # Panics
/// If `s` does not precede `d` componentwise, or an endpoint is unsafe.
pub fn detect_3d_in(lab: &Labelling3, s: C3, d: C3, scratch: &mut FloodScratch3) -> Detection3 {
    assert!(s.dominated_by(d), "detection requires canonical s <= d");
    assert!(
        lab.is_safe(s) && lab.is_safe(d),
        "detection requires safe endpoints; triage labelled endpoints first"
    );
    // Flood main axes / detour axis / target face, per the paper's pairing.
    const SURFACES: [([Axis3; 2], Axis3, Axis3); 3] = [
        ([Axis3::Y, Axis3::Z], Axis3::X, Axis3::Y),
        ([Axis3::X, Axis3::Z], Axis3::Y, Axis3::Z),
        ([Axis3::X, Axis3::Y], Axis3::Z, Axis3::X),
    ];
    let boxlen = ((d.x - s.x + 1) * (d.y - s.y + 1) * (d.z - s.z + 1)) as usize;
    let mut results = [(false, 0usize); 3];
    if scratch.parallelism.resolve() >= 2 && boxlen >= PAR_MIN_BOX {
        // One scoped thread per surface flood, one lane each. The floods
        // never interact (disjoint visited sets, per-flood counts), so
        // this is the sequential result computed three-at-a-time.
        std::thread::scope(|scope| {
            for ((lane, cfg), out) in scratch
                .lanes
                .iter_mut()
                .zip(SURFACES)
                .zip(results.iter_mut())
            {
                scope.spawn(move || {
                    let mut visited = 0;
                    let ok = flood(lab, s, d, cfg.0, cfg.1, cfg.2, &mut visited, lane);
                    *out = (ok, visited);
                });
            }
        });
    } else {
        // Sequential: all three floods share lane 0, preserving the
        // original single-bitset allocation reuse.
        let lane = &mut scratch.lanes[0];
        for (cfg, out) in SURFACES.iter().zip(results.iter_mut()) {
            let mut visited = 0;
            let ok = flood(lab, s, d, cfg.0, cfg.1, cfg.2, &mut visited, lane);
            *out = (ok, visited);
        }
    }
    Detection3 {
        x_surface_ok: results[0].0,
        y_surface_ok: results[1].0,
        z_surface_ok: results[2].0,
        visited: results[0].1 + results[1].1 + results[2].1,
    }
}

/// RMP-box node count below which a detection's floods stay sequential:
/// small-box floods finish faster than the three thread spawns.
const PAR_MIN_BOX: usize = 4096;

/// Surface flood: breadth-first propagation from `s` over safe nodes of the
/// RMP. Moves along the two `main` axes are always allowed; a move along
/// the `detour` axis is taken only by a node with a blocked `main` move
/// (the "+turn" of the paper). Succeeds upon reaching the face where the
/// `target` coordinate equals the destination's.
///
/// The visited map is a flat `NodeSet` bitset over the `[s, d]` RMP box
/// (the flood never leaves it), so per-detection cost scales with the
/// routing box, not the whole mesh — and no coordinate is ever re-hashed.
/// Both the bitset and the queue live in one caller-provided [`FloodLane`].
#[allow(clippy::too_many_arguments)] // axis roles + counters are clearest flat
fn flood(
    lab: &Labelling3,
    s: C3,
    d: C3,
    main: [Axis3; 2],
    detour: Axis3,
    target: Axis3,
    visited_count: &mut usize,
    lane: &mut FloodLane,
) -> bool {
    if s.get(target) == d.get(target) {
        return true;
    }
    let space = NodeSpace3::new(d.x - s.x + 1, d.y - s.y + 1, d.z - s.z + 1);
    let seen = &mut lane.seen;
    let queue = &mut lane.queue;
    seen.reset(space.len());
    queue.clear();
    seen.insert(space.index(C3::ORIGIN));
    queue.push_back(s);
    while let Some(u) = queue.pop_front() {
        *visited_count += 1;
        let mut any_main_blocked = false;
        for axis in main {
            if u.get(axis) >= d.get(axis) {
                continue; // face of the RMP along this axis
            }
            let v = u.step(axis.pos());
            if lab.is_safe(v) {
                if v.get(target) == d.get(target) {
                    return true;
                }
                if seen.insert(space.index(v - s)) {
                    queue.push_back(v);
                }
            } else {
                any_main_blocked = true;
            }
        }
        if any_main_blocked && u.get(detour) < d.get(detour) {
            let v = u.step(detour.pos());
            if lab.is_safe(v) {
                if v.get(target) == d.get(target) {
                    return true;
                }
                if seen.insert(space.index(v - s)) {
                    queue.push_back(v);
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_model::BorderPolicy;
    use mesh_topo::coord::c3;
    use mesh_topo::{Frame3, Mesh3D};

    fn lab_of(faults: &[C3], k: i32) -> Labelling3 {
        let mut mesh = Mesh3D::kary(k);
        for &f in faults {
            mesh.inject_fault(f);
        }
        Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe)
    }

    #[test]
    fn open_mesh_feasible() {
        let lab = lab_of(&[], 6);
        let det = detect_3d(&lab, c3(0, 0, 0), c3(5, 5, 5));
        assert!(det.feasible());
        assert!(det.visited > 0);
    }

    #[test]
    fn line_rmp_block_detected() {
        let lab = lab_of(&[c3(0, 0, 3)], 8);
        let det = detect_3d(&lab, c3(0, 0, 0), c3(0, 0, 6));
        assert!(!det.feasible());
    }

    #[test]
    fn plane_wall_detected() {
        let mut faults = Vec::new();
        for x in 0..4 {
            for y in 0..4 {
                faults.push(c3(x, y, 2));
            }
        }
        let lab = lab_of(&faults, 8);
        assert!(!detect_3d(&lab, c3(0, 0, 0), c3(3, 3, 4)).feasible());
        assert!(detect_3d(&lab, c3(0, 0, 0), c3(4, 3, 4)).feasible());
    }

    #[test]
    fn floods_agree_with_semantic_condition_randomized() {
        use fault_model::{minimal_path_exists_3d, Existence3};
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(23);
        let mut checked = 0;
        for trial in 0..400 {
            let mut mesh = Mesh3D::kary(7);
            for _ in 0..rng.gen_range(0..24) {
                let c = c3(
                    rng.gen_range(0..7),
                    rng.gen_range(0..7),
                    rng.gen_range(0..7),
                );
                if mesh.is_healthy(c) {
                    mesh.inject_fault(c);
                }
            }
            let lab = Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
            let a = c3(
                rng.gen_range(0..7),
                rng.gen_range(0..7),
                rng.gen_range(0..7),
            );
            let b = c3(
                rng.gen_range(0..7),
                rng.gen_range(0..7),
                rng.gen_range(0..7),
            );
            let s = c3(a.x.min(b.x), a.y.min(b.y), a.z.min(b.z));
            let d = c3(a.x.max(b.x), a.y.max(b.y), a.z.max(b.z));
            if !lab.is_safe(s) || !lab.is_safe(d) {
                continue;
            }
            checked += 1;
            let semantic = minimal_path_exists_3d(&lab, s, d) == Existence3::Exists;
            let operational = detect_3d(&lab, s, d).feasible();
            assert_eq!(
                semantic,
                operational,
                "trial {trial}: flood/condition mismatch s={s} d={d} faults={:?}",
                mesh.faults()
            );
        }
        assert!(checked > 150, "too few safe-endpoint trials: {checked}");
    }

    #[test]
    fn degenerate_pairs() {
        let lab = lab_of(&[c3(4, 4, 4)], 6);
        assert!(detect_3d(&lab, c3(1, 1, 1), c3(1, 1, 1)).feasible());
        assert!(detect_3d(&lab, c3(0, 0, 0), c3(5, 0, 0)).feasible());
    }

    #[test]
    #[should_panic]
    fn unsafe_endpoint_panics() {
        let lab = lab_of(&[c3(3, 3, 3)], 8);
        detect_3d(&lab, c3(0, 0, 0), c3(3, 3, 3));
    }

    #[test]
    fn parallel_floods_match_sequential_randomized() {
        use mesh_topo::Parallelism;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        // Boxes of 8000 nodes clear the PAR_MIN_BOX floor, so the
        // parallel fan-out really runs; every surface verdict and the
        // visited total must be bit-identical to the sequential floods.
        let mut rng = SmallRng::seed_from_u64(97);
        let mut seq_scratch = FloodScratch3::new();
        let mut par_scratch = FloodScratch3::parallel(Parallelism::new(3));
        let mut checked = 0;
        for _ in 0..40 {
            let mut mesh = Mesh3D::kary(20);
            for _ in 0..rng.gen_range(0..600) {
                let c = c3(
                    rng.gen_range(0..20),
                    rng.gen_range(0..20),
                    rng.gen_range(0..20),
                );
                if mesh.is_healthy(c) {
                    mesh.inject_fault(c);
                }
            }
            let lab = Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
            let (s, d) = (c3(0, 0, 0), c3(19, 19, 19));
            if !lab.is_safe(s) || !lab.is_safe(d) {
                continue;
            }
            checked += 1;
            let seq = detect_3d_in(&lab, s, d, &mut seq_scratch);
            let par = detect_3d_in(&lab, s, d, &mut par_scratch);
            assert_eq!(seq, par, "parallel floods must match sequential");
        }
        assert!(checked > 10, "too few safe-endpoint trials: {checked}");
    }
}
