//! Algorithm 6 — boundary-information-based routing in 3-D meshes.
//!
//! Same two-phase structure as the 2-D router ([`crate::router2`]): the
//! feasibility floods of [`crate::feasibility3`] run at the source, then
//! per-hop forwarding picks among the preferred directions that do not lead
//! into a detour area. The exact rule uses the merged-region semantics
//! (precomputed [`Useful3`] over the unsafe closure); the ablation rule uses
//! unmerged per-MCC line-shadow records.

use fault_model::mcc3::MccSet3;
use fault_model::oracle::Useful3;
use fault_model::Labelling3;
use mesh_topo::{Axis3, Dir3, Path3, C3};

use crate::dirbuf::DirBuf3;
use crate::feasibility3::{detect_3d_in, FloodScratch3};
use crate::policy::Policy;
use crate::router2::DecisionRule;
use crate::trace::{RouteOutcome3, RouteResult};

/// Reusable buffers for one 3-D route: the backward-reachability set and
/// the detection-flood state. One instance carried across a batch of
/// routes keeps the steady-state per-route allocation count at the output
/// path itself.
#[derive(Clone, Debug)]
pub struct RouteScratch3 {
    useful: Useful3,
    flood: FloodScratch3,
}

impl RouteScratch3 {
    /// Fresh, empty scratch.
    pub fn new() -> RouteScratch3 {
        RouteScratch3 {
            useful: Useful3::scratch(),
            flood: FloodScratch3::new(),
        }
    }
}

impl Default for RouteScratch3 {
    fn default() -> RouteScratch3 {
        RouteScratch3::new()
    }
}

/// The two-phase 3-D router over one labelled octant.
#[derive(Clone, Debug)]
pub struct Router3<'a> {
    lab: &'a Labelling3,
    mccs: &'a MccSet3,
}

impl<'a> Router3<'a> {
    /// A router using the labelling and MCC decomposition of the
    /// destination octant. All coordinates are canonical.
    pub fn new(lab: &'a Labelling3, mccs: &'a MccSet3) -> Router3<'a> {
        Router3 { lab, mccs }
    }

    /// Route from `s` to `d` (canonical, `s ≤ d`) with the exact rule.
    pub fn route(&self, s: C3, d: C3, policy: &mut Policy) -> RouteOutcome3 {
        self.route_with_rule(s, d, policy, DecisionRule::BoundaryExact)
    }

    /// Route with an explicit decision rule.
    ///
    /// # Panics
    /// If `s` does not precede `d` componentwise.
    pub fn route_with_rule(
        &self,
        s: C3,
        d: C3,
        policy: &mut Policy,
        rule: DecisionRule,
    ) -> RouteOutcome3 {
        self.route_with_rule_in(s, d, policy, rule, &mut RouteScratch3::new())
    }

    /// [`Router3::route_with_rule`] with caller-provided scratch buffers
    /// (backward-reachability set + detection-flood state), so batched
    /// trials recompute them in place instead of allocating per route.
    ///
    /// # Panics
    /// If `s` does not precede `d` componentwise.
    pub fn route_with_rule_in(
        &self,
        s: C3,
        d: C3,
        policy: &mut Policy,
        rule: DecisionRule,
        scratch: &mut RouteScratch3,
    ) -> RouteOutcome3 {
        let det = match self.precheck(s, d, &mut scratch.flood) {
            Ok(det) => det,
            Err(refused) => return refused,
        };
        scratch.useful.recompute(s, d, |c| {
            self.lab
                .status_get(c)
                .map(|t| t.is_unsafe())
                .unwrap_or(true)
        });
        self.forward(s, d, policy, rule, &scratch.useful, det)
    }

    /// Route reusing a backward-reachability set the caller just computed
    /// for exactly this `(s, d)` over the unsafe closure (see the 2-D
    /// twin [`crate::router2::Router2::route_with_rule_reusing`]).
    pub(crate) fn route_with_rule_reusing(
        &self,
        s: C3,
        d: C3,
        policy: &mut Policy,
        rule: DecisionRule,
        useful: &Useful3,
        flood: &mut crate::feasibility3::FloodScratch3,
    ) -> RouteOutcome3 {
        let det = match self.precheck(s, d, flood) {
            Ok(det) => det,
            Err(refused) => return refused,
        };
        self.forward(s, d, policy, rule, useful, det)
    }

    /// Source-side triage shared by every entry point: refuse labelled
    /// endpoints, then run the detection floods. `Err` carries the
    /// finished infeasible outcome.
    ///
    /// # Panics
    /// If `s` does not precede `d` componentwise.
    fn precheck(
        &self,
        s: C3,
        d: C3,
        flood: &mut crate::feasibility3::FloodScratch3,
    ) -> Result<crate::feasibility3::Detection3, RouteOutcome3> {
        assert!(s.dominated_by(d), "router requires canonical s <= d");
        if !self.lab.is_safe(s) || !self.lab.is_safe(d) {
            return Err(RouteOutcome3 {
                result: RouteResult::Infeasible,
                path: Path3::start(s),
                adaptivity_sum: 0,
                detection_cost: 0,
            });
        }
        let det = detect_3d_in(self.lab, s, d, flood);
        if !det.feasible() {
            return Err(RouteOutcome3 {
                result: RouteResult::Infeasible,
                path: Path3::start(s),
                adaptivity_sum: 0,
                detection_cost: det.visited,
            });
        }
        Ok(det)
    }

    /// The per-hop forwarding loop shared by every entry point; `useful`
    /// must hold the backward-reachability set for `(s, d)` and `det` the
    /// completed (feasible) detection.
    fn forward(
        &self,
        s: C3,
        d: C3,
        policy: &mut Policy,
        rule: DecisionRule,
        useful: &Useful3,
        det: crate::feasibility3::Detection3,
    ) -> RouteOutcome3 {
        let mut path = Path3::start(s);
        let mut adaptivity_sum = 0usize;
        let mut u = s;
        let mut allowed = DirBuf3::new();
        while u != d {
            allowed.clear();
            for dir in Dir3::POSITIVE {
                if u.get(dir.axis()) >= d.get(dir.axis()) {
                    continue;
                }
                let v = u.step(dir);
                if !self.lab.is_safe(v) {
                    continue;
                }
                let ok = match rule {
                    DecisionRule::BoundaryExact => useful.contains(v),
                    DecisionRule::PairRecords => !self.pair_forbidden(v, d),
                };
                if ok {
                    allowed.push(dir);
                }
            }
            if allowed.is_empty() {
                debug_assert!(
                    rule == DecisionRule::PairRecords,
                    "exact rule can never strand a feasible route (at {u:?})"
                );
                return RouteOutcome3 {
                    result: RouteResult::Stuck,
                    path,
                    adaptivity_sum,
                    detection_cost: det.visited,
                };
            }
            adaptivity_sum += allowed.len();
            let dir = policy.choose3(u, d, allowed.as_slice());
            u = u.step(dir);
            path.push(u);
        }
        RouteOutcome3 {
            result: RouteResult::Delivered,
            path,
            adaptivity_sum,
            detection_cost: det.visited,
        }
    }

    /// The unmerged-record exclusion via 3-D line shadows.
    fn pair_forbidden(&self, v: C3, d: C3) -> bool {
        self.mccs.iter().any(|m| {
            Axis3::ALL
                .into_iter()
                .any(|axis| m.in_critical(axis, d) && m.in_forbidden(axis, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_model::mcc3::MccSet3;
    use fault_model::BorderPolicy;
    use mesh_topo::coord::c3;
    use mesh_topo::{Frame3, Mesh3D};

    fn setup(faults: &[C3], k: i32) -> (Mesh3D, Labelling3, MccSet3) {
        let mut mesh = Mesh3D::kary(k);
        for &f in faults {
            mesh.inject_fault(f);
        }
        let lab = Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
        let set = MccSet3::compute(&lab);
        (mesh, lab, set)
    }

    #[test]
    fn routes_fault_free_minimally() {
        let (mesh, lab, set) = setup(&[], 8);
        let router = Router3::new(&lab, &set);
        for mut policy in Policy::suite(4) {
            let out = router.route(c3(0, 0, 0), c3(6, 5, 4), &mut policy);
            assert!(out.delivered());
            assert!(out.path.is_minimal(&mesh, c3(0, 0, 0), c3(6, 5, 4)));
            assert_eq!(out.path.hops() as u32, 15);
        }
    }

    #[test]
    fn routes_around_figure5_regions() {
        let faults = [
            c3(5, 5, 6),
            c3(6, 5, 5),
            c3(5, 6, 5),
            c3(6, 7, 5),
            c3(7, 6, 5),
            c3(5, 4, 7),
            c3(4, 5, 7),
            c3(7, 8, 4),
        ];
        let (mesh, lab, set) = setup(&faults, 10);
        let router = Router3::new(&lab, &set);
        for mut policy in Policy::suite(5) {
            let out = router.route(c3(0, 0, 0), c3(9, 9, 9), &mut policy);
            assert!(out.delivered());
            assert!(out.path.is_minimal(&mesh, c3(0, 0, 0), c3(9, 9, 9)));
            for &n in out.path.nodes() {
                assert!(lab.is_safe(n));
            }
        }
    }

    #[test]
    fn refuses_infeasible() {
        let (_, lab, set) = setup(&[c3(0, 0, 3)], 8);
        let router = Router3::new(&lab, &set);
        let out = router.route(c3(0, 0, 0), c3(0, 0, 6), &mut Policy::x_first());
        assert_eq!(out.result, RouteResult::Infeasible);
    }

    #[test]
    fn adaptivity_in_open_mesh() {
        let (_, lab, set) = setup(&[], 8);
        let router = Router3::new(&lab, &set);
        let out = router.route(c3(0, 0, 0), c3(7, 7, 7), &mut Policy::balanced());
        assert!(
            out.adaptivity() > 2.0,
            "3-D open-mesh adaptivity {}",
            out.adaptivity()
        );
    }

    #[test]
    fn exact_rule_never_sticks_randomized() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(41);
        let mut delivered = 0;
        for _ in 0..200 {
            let mut mesh = Mesh3D::kary(8);
            for _ in 0..rng.gen_range(0..30) {
                let c = c3(
                    rng.gen_range(0..8),
                    rng.gen_range(0..8),
                    rng.gen_range(0..8),
                );
                if mesh.is_healthy(c) {
                    mesh.inject_fault(c);
                }
            }
            let lab = Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
            let set = MccSet3::compute(&lab);
            let router = Router3::new(&lab, &set);
            let a = c3(
                rng.gen_range(0..8),
                rng.gen_range(0..8),
                rng.gen_range(0..8),
            );
            let b = c3(
                rng.gen_range(0..8),
                rng.gen_range(0..8),
                rng.gen_range(0..8),
            );
            let s = c3(a.x.min(b.x), a.y.min(b.y), a.z.min(b.z));
            let d = c3(a.x.max(b.x), a.y.max(b.y), a.z.max(b.z));
            let mut policy = Policy::random(rng.gen());
            let out = router.route(s, d, &mut policy);
            match out.result {
                RouteResult::Delivered => {
                    delivered += 1;
                    assert!(out.path.is_minimal(&mesh, s, d));
                }
                RouteResult::Infeasible => {}
                RouteResult::Stuck => {
                    panic!(
                        "exact rule stranded: s={s} d={d} faults={:?}",
                        mesh.faults()
                    )
                }
            }
        }
        assert!(delivered > 100, "too few delivered routes: {delivered}");
    }

    #[test]
    fn pair_records_rule_never_misroutes() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(43);
        for _ in 0..150 {
            let mut mesh = Mesh3D::kary(7);
            for _ in 0..rng.gen_range(0..25) {
                let c = c3(
                    rng.gen_range(0..7),
                    rng.gen_range(0..7),
                    rng.gen_range(0..7),
                );
                if mesh.is_healthy(c) {
                    mesh.inject_fault(c);
                }
            }
            let lab = Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
            let set = MccSet3::compute(&lab);
            let router = Router3::new(&lab, &set);
            let a = c3(
                rng.gen_range(0..7),
                rng.gen_range(0..7),
                rng.gen_range(0..7),
            );
            let b = c3(
                rng.gen_range(0..7),
                rng.gen_range(0..7),
                rng.gen_range(0..7),
            );
            let s = c3(a.x.min(b.x), a.y.min(b.y), a.z.min(b.z));
            let d = c3(a.x.max(b.x), a.y.max(b.y), a.z.max(b.z));
            let mut policy = Policy::random(rng.gen());
            let out = router.route_with_rule(s, d, &mut policy, DecisionRule::PairRecords);
            if out.result == RouteResult::Delivered {
                assert!(out.path.is_minimal(&mesh, s, d));
            }
        }
    }
}
