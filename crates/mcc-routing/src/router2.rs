//! Algorithm 3 — boundary-information-based routing in 2-D meshes.
//!
//! Phase one: the feasibility check of [`crate::feasibility2`] runs at the
//! source; routing is activated only when a minimal path is guaranteed.
//! Phase two: at every node (source included) the candidate set `F` holds
//! the preferred (positive) directions; a direction is excluded when the
//! neighbor behind it lies in a detour area for the current destination.
//! Any [`Policy`] then picks the forwarding direction.
//!
//! Two exclusion rules are provided:
//!
//! * [`DecisionRule::BoundaryExact`] — the merged-region semantics of the
//!   boundary construction: a neighbor is excluded iff the destination is
//!   not monotonically reachable from it while avoiding the unsafe closure
//!   (the precomputed [`Useful2`] set). With this rule the router is
//!   provably stuck-free and minimal whenever feasibility held.
//! * [`DecisionRule::PairRecords`] — the *unmerged* per-MCC records: a
//!   neighbor is excluded iff some single MCC has the destination in its
//!   critical region and the neighbor in the matching forbidden region.
//!   This is what a node could decide from one MCC's boundary record alone,
//!   without the merge step; the router can then strand in multi-region
//!   compositions, and the delta is an ablation the benchmark measures.

use fault_model::mcc2::MccSet2;
use fault_model::oracle::Useful2;
use fault_model::Labelling2;
use mesh_topo::{Dir2, Path2, C2};
use serde::{Deserialize, Serialize};

use crate::dirbuf::DirBuf2;
use crate::feasibility2::detect_2d;
use crate::policy::Policy;
use crate::trace::{RouteOutcome2, RouteResult};

/// Per-hop direction-exclusion rule (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum DecisionRule {
    /// Merged-region (exact) boundary information.
    #[default]
    BoundaryExact,
    /// Unmerged per-MCC records (ablation).
    PairRecords,
}

/// The two-phase 2-D router over one labelled quadrant.
#[derive(Clone, Debug)]
pub struct Router2<'a> {
    lab: &'a Labelling2,
    mccs: &'a MccSet2,
}

impl<'a> Router2<'a> {
    /// A router using the labelling and MCC decomposition of the
    /// destination quadrant. All coordinates are canonical.
    pub fn new(lab: &'a Labelling2, mccs: &'a MccSet2) -> Router2<'a> {
        Router2 { lab, mccs }
    }

    /// Route from `s` to `d` (canonical, `s ≤ d`) with the exact rule.
    pub fn route(&self, s: C2, d: C2, policy: &mut Policy) -> RouteOutcome2 {
        self.route_with_rule(s, d, policy, DecisionRule::BoundaryExact)
    }

    /// Route with an explicit decision rule.
    ///
    /// # Panics
    /// If `s` does not precede `d` componentwise.
    pub fn route_with_rule(
        &self,
        s: C2,
        d: C2,
        policy: &mut Policy,
        rule: DecisionRule,
    ) -> RouteOutcome2 {
        self.route_with_rule_in(s, d, policy, rule, &mut Useful2::scratch())
    }

    /// [`Router2::route_with_rule`] with a caller-provided scratch buffer
    /// for the backward-reachability set, so batched trials recompute it
    /// in place instead of allocating per route.
    ///
    /// # Panics
    /// If `s` does not precede `d` componentwise.
    pub fn route_with_rule_in(
        &self,
        s: C2,
        d: C2,
        policy: &mut Policy,
        rule: DecisionRule,
        useful: &mut Useful2,
    ) -> RouteOutcome2 {
        let det = match self.precheck(s, d) {
            Ok(det) => det,
            Err(refused) => return refused,
        };
        useful.recompute(s, d, |c| {
            self.lab
                .status_get(c)
                .map(|t| t.is_unsafe())
                .unwrap_or(true)
        });
        self.forward(s, d, policy, rule, useful, det)
    }

    /// Route reusing a backward-reachability set the caller just computed
    /// for exactly this `(s, d)` over the unsafe closure — what the
    /// safe-endpoints branch of the existence condition produces. Skips
    /// one box sweep per route; the set's content is identical to what
    /// [`Router2::route_with_rule_in`] would recompute, so outcomes are
    /// unchanged. (The buffer is never read when `s == d`, the one case
    /// where the condition skips the sweep.)
    pub(crate) fn route_with_rule_reusing(
        &self,
        s: C2,
        d: C2,
        policy: &mut Policy,
        rule: DecisionRule,
        useful: &Useful2,
    ) -> RouteOutcome2 {
        let det = match self.precheck(s, d) {
            Ok(det) => det,
            Err(refused) => return refused,
        };
        self.forward(s, d, policy, rule, useful, det)
    }

    /// Source-side triage shared by every entry point: refuse labelled
    /// endpoints (the model routes between safe nodes; cf. the endpoint
    /// triage of condition2), then run the detection walks. `Err` carries
    /// the finished infeasible outcome.
    ///
    /// # Panics
    /// If `s` does not precede `d` componentwise.
    fn precheck(&self, s: C2, d: C2) -> Result<crate::feasibility2::Detection2, RouteOutcome2> {
        assert!(s.dominated_by(d), "router requires canonical s <= d");
        if !self.lab.is_safe(s) || !self.lab.is_safe(d) {
            return Err(RouteOutcome2 {
                result: RouteResult::Infeasible,
                path: Path2::start(s),
                adaptivity_sum: 0,
                detection_hops: 0,
            });
        }
        let det = detect_2d(self.lab, s, d);
        if !det.feasible() {
            return Err(RouteOutcome2 {
                result: RouteResult::Infeasible,
                path: Path2::start(s),
                adaptivity_sum: 0,
                detection_hops: det.hops,
            });
        }
        Ok(det)
    }

    /// The per-hop forwarding loop shared by every entry point; `useful`
    /// must hold the backward-reachability set for `(s, d)` and `det` the
    /// completed (feasible) detection.
    fn forward(
        &self,
        s: C2,
        d: C2,
        policy: &mut Policy,
        rule: DecisionRule,
        useful: &Useful2,
        det: crate::feasibility2::Detection2,
    ) -> RouteOutcome2 {
        let mut path = Path2::start(s);
        let mut adaptivity_sum = 0usize;
        let mut u = s;
        let mut allowed = DirBuf2::new();
        while u != d {
            allowed.clear();
            for dir in Dir2::POSITIVE {
                if u.get(dir.axis()) >= d.get(dir.axis()) {
                    continue; // not a preferred direction here
                }
                let v = u.step(dir);
                if !self.lab.is_safe(v) {
                    continue; // never forward into a fault region
                }
                let ok = match rule {
                    DecisionRule::BoundaryExact => useful.contains(v),
                    DecisionRule::PairRecords => !self.pair_forbidden(v, d),
                };
                if ok {
                    allowed.push(dir);
                }
            }
            if allowed.is_empty() {
                debug_assert!(
                    rule == DecisionRule::PairRecords,
                    "exact rule can never strand a feasible route (at {u:?})"
                );
                return RouteOutcome2 {
                    result: RouteResult::Stuck,
                    path,
                    adaptivity_sum,
                    detection_hops: det.hops,
                };
            }
            adaptivity_sum += allowed.len();
            let dir = policy.choose2(u, d, allowed.as_slice());
            u = u.step(dir);
            path.push(u);
        }
        RouteOutcome2 {
            result: RouteResult::Delivered,
            path,
            adaptivity_sum,
            detection_hops: det.hops,
        }
    }

    /// The unmerged-record exclusion: some single MCC has `d` critical and
    /// `v` forbidden on the same axis.
    fn pair_forbidden(&self, v: C2, d: C2) -> bool {
        self.mccs.iter().any(|m| {
            (m.in_critical_x(d) && m.in_forbidden_x(v))
                || (m.in_critical_y(d) && m.in_forbidden_y(v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_model::mcc2::MccSet2;
    use fault_model::BorderPolicy;
    use mesh_topo::coord::c2;
    use mesh_topo::{Frame2, Mesh2D};

    fn setup(faults: &[C2], w: i32, h: i32) -> (Mesh2D, Labelling2, MccSet2) {
        let mut mesh = Mesh2D::new(w, h);
        for &f in faults {
            mesh.inject_fault(f);
        }
        let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        let set = MccSet2::compute(&lab);
        (mesh, lab, set)
    }

    #[test]
    fn routes_fault_free_minimally_under_every_policy() {
        let (mesh, lab, set) = setup(&[], 10, 10);
        let router = Router2::new(&lab, &set);
        for mut policy in Policy::suite(1) {
            let out = router.route(c2(0, 0), c2(7, 5), &mut policy);
            assert!(out.delivered());
            assert!(out.path.is_minimal(&mesh, c2(0, 0), c2(7, 5)));
            assert_eq!(out.path.hops() as u32, 12);
        }
    }

    #[test]
    fn routes_around_single_region() {
        let faults = [c2(3, 3), c2(4, 3), c2(3, 4)];
        let (mesh, lab, set) = setup(&faults, 10, 10);
        let router = Router2::new(&lab, &set);
        for mut policy in Policy::suite(2) {
            let out = router.route(c2(0, 0), c2(8, 8), &mut policy);
            assert!(out.delivered());
            assert!(out.path.is_minimal(&mesh, c2(0, 0), c2(8, 8)));
            for &n in out.path.nodes() {
                assert!(lab.is_safe(n), "route stepped on unsafe node {n}");
            }
        }
    }

    #[test]
    fn refuses_infeasible_routes() {
        let (_, lab, set) = setup(&[c2(3, 4)], 8, 8);
        let router = Router2::new(&lab, &set);
        let out = router.route(c2(3, 0), c2(3, 7), &mut Policy::x_first());
        assert_eq!(out.result, RouteResult::Infeasible);
        assert_eq!(out.path.hops(), 0);
    }

    #[test]
    fn refuses_labelled_endpoints() {
        // d useless: the model does not activate routing.
        let (_, lab, set) = setup(&[c2(6, 5), c2(5, 6)], 9, 9);
        assert!(lab.status(c2(5, 5)).is_useless());
        let router = Router2::new(&lab, &set);
        let out = router.route(c2(0, 0), c2(5, 5), &mut Policy::balanced());
        assert_eq!(out.result, RouteResult::Infeasible);
    }

    #[test]
    fn adaptivity_shrinks_near_regions() {
        let (_, lab, set) = setup(&[], 10, 10);
        let router = Router2::new(&lab, &set);
        let open = router.route(c2(0, 0), c2(8, 8), &mut Policy::balanced());
        // In an open mesh almost every hop has both directions allowed.
        assert!(
            open.adaptivity() > 1.5,
            "open-mesh adaptivity {}",
            open.adaptivity()
        );
        let line = router.route(c2(0, 3), c2(9, 3), &mut Policy::balanced());
        assert!(
            (line.adaptivity() - 1.0).abs() < 1e-12,
            "line RMP is fully forced"
        );
    }

    #[test]
    fn exact_rule_never_sticks_randomized() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(31);
        let mut delivered = 0;
        for _ in 0..300 {
            let mut mesh = Mesh2D::new(12, 12);
            for _ in 0..rng.gen_range(0..18) {
                let c = c2(rng.gen_range(0..12), rng.gen_range(0..12));
                if mesh.is_healthy(c) {
                    mesh.inject_fault(c);
                }
            }
            let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
            let set = MccSet2::compute(&lab);
            let router = Router2::new(&lab, &set);
            let (ax, ay) = (rng.gen_range(0..12), rng.gen_range(0..12));
            let (bx, by) = (rng.gen_range(0..12), rng.gen_range(0..12));
            let s = c2(ax.min(bx), ay.min(by));
            let d = c2(ax.max(bx), ay.max(by));
            let mut policy = Policy::random(rng.gen());
            let out = router.route(s, d, &mut policy);
            match out.result {
                RouteResult::Delivered => {
                    delivered += 1;
                    assert!(out.path.is_minimal(&mesh, s, d));
                }
                RouteResult::Infeasible => {}
                RouteResult::Stuck => panic!(
                    "exact rule stranded: s={s} d={d} faults={:?}",
                    mesh.faults()
                ),
            }
        }
        assert!(delivered > 100, "too few delivered routes: {delivered}");
    }

    #[test]
    fn pair_records_rule_can_strand_but_never_misroutes() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(37);
        for _ in 0..300 {
            let mut mesh = Mesh2D::new(12, 12);
            for _ in 0..rng.gen_range(0..18) {
                let c = c2(rng.gen_range(0..12), rng.gen_range(0..12));
                if mesh.is_healthy(c) {
                    mesh.inject_fault(c);
                }
            }
            let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
            let set = MccSet2::compute(&lab);
            let router = Router2::new(&lab, &set);
            let (ax, ay) = (rng.gen_range(0..12), rng.gen_range(0..12));
            let (bx, by) = (rng.gen_range(0..12), rng.gen_range(0..12));
            let s = c2(ax.min(bx), ay.min(by));
            let d = c2(ax.max(bx), ay.max(by));
            let mut policy = Policy::random(rng.gen());
            let out = router.route_with_rule(s, d, &mut policy, DecisionRule::PairRecords);
            if out.result == RouteResult::Delivered {
                assert!(out.path.is_minimal(&mesh, s, d));
            }
        }
    }

    #[test]
    fn trivial_route() {
        let (_, lab, set) = setup(&[], 4, 4);
        let router = Router2::new(&lab, &set);
        let out = router.route(c2(2, 2), c2(2, 2), &mut Policy::x_first());
        assert!(out.delivered());
        assert_eq!(out.path.hops(), 0);
    }
}
