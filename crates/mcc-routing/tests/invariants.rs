//! Property-based validation of the routing layer's guarantees.
//!
//! * detection walks/floods ⇔ the semantic existence condition,
//! * the router delivers iff the condition admits (safe endpoints),
//! * every delivered path is minimal and fault-free,
//! * the guarantee is policy-independent (the adaptive choice never
//!   affects success, only the concrete path).

use fault_model::mcc2::MccSet2;
use fault_model::mcc3::MccSet3;
use fault_model::{
    minimal_path_exists_2d, minimal_path_exists_3d, BorderPolicy, Existence2, Existence3,
    Labelling2, Labelling3,
};
use mcc_routing::policy::Policy;
use mcc_routing::{detect_2d, detect_3d, Router2, Router3};
use mesh_topo::coord::{c2, c3};
use mesh_topo::{Frame2, Frame3, Mesh2D, Mesh3D};
use proptest::prelude::*;

const W: i32 = 12;
const K: i32 = 7;

fn arb_mesh2() -> impl Strategy<Value = Mesh2D> {
    proptest::collection::vec((0..W, 0..W), 0..18).prop_map(|faults| {
        let mut mesh = Mesh2D::new(W, W);
        for (x, y) in faults {
            let c = c2(x, y);
            if mesh.is_healthy(c) {
                mesh.inject_fault(c);
            }
        }
        mesh
    })
}

fn arb_mesh3() -> impl Strategy<Value = Mesh3D> {
    proptest::collection::vec((0..K, 0..K, 0..K), 0..26).prop_map(|faults| {
        let mut mesh = Mesh3D::kary(K);
        for (x, y, z) in faults {
            let c = c3(x, y, z);
            if mesh.is_healthy(c) {
                mesh.inject_fault(c);
            }
        }
        mesh
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Detection walks equal the semantic condition (2-D).
    #[test]
    fn detection2_equals_condition(mesh in arb_mesh2(),
                                   ax in 0..W, ay in 0..W, bx in 0..W, by in 0..W) {
        let s = c2(ax.min(bx), ay.min(by));
        let d = c2(ax.max(bx), ay.max(by));
        let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        prop_assume!(lab.is_safe(s) && lab.is_safe(d));
        let set = MccSet2::compute(&lab);
        let semantic = minimal_path_exists_2d(&lab, &set, s, d) == Existence2::Exists;
        prop_assert_eq!(detect_2d(&lab, s, d).feasible(), semantic);
    }

    /// Detection floods equal the semantic condition (3-D).
    #[test]
    fn detection3_equals_condition(mesh in arb_mesh3(),
                                   ax in 0..K, ay in 0..K, az in 0..K,
                                   bx in 0..K, by in 0..K, bz in 0..K) {
        let s = c3(ax.min(bx), ay.min(by), az.min(bz));
        let d = c3(ax.max(bx), ay.max(by), az.max(bz));
        let lab = Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
        prop_assume!(lab.is_safe(s) && lab.is_safe(d));
        let semantic = minimal_path_exists_3d(&lab, s, d) == Existence3::Exists;
        prop_assert_eq!(detect_3d(&lab, s, d).feasible(), semantic);
    }

    /// The 2-D router delivers iff feasible, minimally, under every policy.
    #[test]
    fn router2_guarantee_policy_independent(mesh in arb_mesh2(),
                                            ax in 0..W, ay in 0..W,
                                            bx in 0..W, by in 0..W,
                                            seed in 0u64..1000) {
        let s = c2(ax.min(bx), ay.min(by));
        let d = c2(ax.max(bx), ay.max(by));
        let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        prop_assume!(lab.is_safe(s) && lab.is_safe(d));
        let set = MccSet2::compute(&lab);
        let feasible = minimal_path_exists_2d(&lab, &set, s, d) == Existence2::Exists;
        let router = Router2::new(&lab, &set);
        for mut policy in Policy::suite(seed) {
            let out = router.route(s, d, &mut policy);
            prop_assert_eq!(out.delivered(), feasible);
            if out.delivered() {
                prop_assert!(out.path.is_minimal(&mesh, s, d));
                for &n in out.path.nodes() {
                    prop_assert!(lab.is_safe(n), "route used unsafe node {}", n);
                }
            }
        }
    }

    /// The 3-D router delivers iff feasible, minimally, under every policy.
    #[test]
    fn router3_guarantee_policy_independent(mesh in arb_mesh3(),
                                            ax in 0..K, ay in 0..K, az in 0..K,
                                            bx in 0..K, by in 0..K, bz in 0..K,
                                            seed in 0u64..1000) {
        let s = c3(ax.min(bx), ay.min(by), az.min(bz));
        let d = c3(ax.max(bx), ay.max(by), az.max(bz));
        let lab = Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
        prop_assume!(lab.is_safe(s) && lab.is_safe(d));
        let set = MccSet3::compute(&lab);
        let feasible = minimal_path_exists_3d(&lab, s, d) == Existence3::Exists;
        let router = Router3::new(&lab, &set);
        for mut policy in Policy::suite(seed) {
            let out = router.route(s, d, &mut policy);
            prop_assert_eq!(out.delivered(), feasible);
            if out.delivered() {
                prop_assert!(out.path.is_minimal(&mesh, s, d));
            }
        }
    }

    /// Baseline sanity under random instances: the greedy router's
    /// delivered paths are always minimal (it fails by stranding, never by
    /// detouring), and the block router never outperforms the oracle.
    #[test]
    fn baselines_never_cheat(mesh in arb_mesh2(),
                             ax in 0..W, ay in 0..W, bx in 0..W, by in 0..W,
                             seed in 0u64..1000) {
        let s = c2(ax.min(bx), ay.min(by));
        let d = c2(ax.max(bx), ay.max(by));
        prop_assume!(mesh.is_healthy(s) && mesh.is_healthy(d));
        let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        let g = mcc_routing::baseline::route_greedy_2d(&lab, s, d, &mut Policy::random(seed));
        if g.delivered() {
            prop_assert!(g.path.is_minimal(&mesh, s, d));
        }
        let blocks = fault_model::FaultBlocks2::compute(&mesh);
        if blocks.minimal_path_exists(&mesh, s, d) {
            let truth = fault_model::oracle::reachable_2d(s, d, |c| !mesh.is_healthy(c));
            prop_assert!(truth);
        }
    }
}
