//! Routing half of the churn equivalence battery (DESIGN.md §12).
//!
//! The fault-model battery pins the maintained *models* bit-for-bit; this
//! one pins the **decisions made on top of them**: after every step of a
//! random inject/heal trace, routing over [`IncrementalModels2`] /
//! [`IncrementalModels3`] — full [`Policy::suite`] per pair, on mesh and
//! torus — must produce [`RouteOutcome2`]/[`RouteOutcome3`] records equal
//! field-for-field (result, full path, adaptivity sum, detection cost) to
//! a router running on freshly recomputed models of the churned mesh.

use fault_model::incremental::{IncrementalModels2, IncrementalModels3};
use fault_model::mcc2::MccSet2;
use fault_model::mcc3::MccSet3;
use fault_model::{BorderPolicy, Labelling2, Labelling3};
use mcc_routing::policy::Policy;
use mcc_routing::router2::Router2;
use mcc_routing::router3::Router3;
use mesh_topo::coord::{c2, c3};
use mesh_topo::{Frame2, Frame3, Mesh2D, Mesh3D, C2, C3};
use proptest::prelude::*;

fn step_2d(mesh: &Mesh2D, raw: &(Vec<(i32, i32)>, Vec<u8>)) -> (Vec<C2>, Vec<C2>) {
    let (w, h) = (mesh.width(), mesh.height());
    let mut injected = Vec::new();
    for &(x, y) in &raw.0 {
        let c = c2(x.rem_euclid(w), y.rem_euclid(h));
        if mesh.is_healthy(c) && !injected.contains(&c) {
            injected.push(c);
        }
    }
    let faults = mesh.faults();
    let mut healed = Vec::new();
    for &pick in &raw.1 {
        if faults.is_empty() {
            break;
        }
        let c = faults[pick as usize % faults.len()];
        if !healed.contains(&c) {
            healed.push(c);
        }
    }
    (injected, healed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// 2-D: every policy of the suite routes identically over maintained
    /// and fresh models, after every churn step.
    #[test]
    fn routing_over_incremental_models_equals_fresh_2d(
        dims in (7..12i32, 7..12i32),
        torus in any::<bool>(),
        init in proptest::collection::vec((0..12i32, 0..12i32), 0..14),
        trace in proptest::collection::vec(
            (proptest::collection::vec((0..12i32, 0..12i32), 0..3),
             proptest::collection::vec(any::<u8>(), 0..3)),
            1..7),
        pairs in proptest::collection::vec((0..12i32, 0..12i32, 0..12i32, 0..12i32), 1..5),
        seed in any::<u64>(),
    ) {
        let (w, h) = dims;
        let mut mesh = if torus { Mesh2D::torus(w, h) } else { Mesh2D::new(w, h) };
        for (x, y) in init {
            let c = c2(x % w, y % h);
            if mesh.is_healthy(c) {
                mesh.inject_fault(c);
            }
        }
        let mut inc = IncrementalModels2::new(mesh, BorderPolicy::BorderSafe);
        for raw in &trace {
            let (injected, healed) = step_2d(inc.mesh(), raw);
            inc.apply(&injected, &healed);
            for &(sx, sy, dx, dy) in &pairs {
                let s = c2(sx % w, sy % h);
                let d = c2(dx % w, dy % h);
                let mesh = inc.mesh().clone();
                if !mesh.is_healthy(s) || !mesh.is_healthy(d) {
                    continue;
                }
                let frame = Frame2::for_pair(&mesh, s, d);
                let (cs, cd) = (frame.to_canon(s), frame.to_canon(d));
                let m = inc.models(frame);
                let fresh_lab = Labelling2::compute(&mesh, frame, BorderPolicy::BorderSafe);
                let fresh_mccs = MccSet2::compute(&fresh_lab);
                let maintained = Router2::new(m.lab, m.mccs);
                let fresh = Router2::new(&fresh_lab, &fresh_mccs);
                for policy in Policy::suite(seed) {
                    let got = maintained.route(cs, cd, &mut policy.clone());
                    let want = fresh.route(cs, cd, &mut policy.clone());
                    prop_assert_eq!(&got, &want, "routing diverged for {}->{}", s, d);
                }
            }
        }
    }

    /// 3-D twin, identity-octant pairs on k-ary meshes and tori.
    #[test]
    fn routing_over_incremental_models_equals_fresh_3d(
        k in 5..7i32,
        torus in any::<bool>(),
        init in proptest::collection::vec((0..7i32, 0..7i32, 0..7i32), 0..12),
        trace in proptest::collection::vec(
            (proptest::collection::vec((0..7i32, 0..7i32, 0..7i32), 0..3),
             proptest::collection::vec(any::<u8>(), 0..2)),
            1..5),
        pairs in proptest::collection::vec(
            (0..7i32, 0..7i32, 0..7i32, 0..7i32, 0..7i32, 0..7i32), 1..4),
        seed in any::<u64>(),
    ) {
        let mut mesh = if torus { Mesh3D::torus(k, k, k) } else { Mesh3D::kary(k) };
        for (x, y, z) in init {
            let c = c3(x % k, y % k, z % k);
            if mesh.is_healthy(c) {
                mesh.inject_fault(c);
            }
        }
        let mut inc = IncrementalModels3::new(mesh, BorderPolicy::BorderSafe);
        for raw in &trace {
            let (nx, ny, nz) = (k, k, k);
            let mut injected: Vec<C3> = Vec::new();
            for &(x, y, z) in &raw.0 {
                let c = c3(x.rem_euclid(nx), y.rem_euclid(ny), z.rem_euclid(nz));
                if inc.mesh().is_healthy(c) && !injected.contains(&c) {
                    injected.push(c);
                }
            }
            let faults = inc.mesh().faults().to_vec();
            let mut healed: Vec<C3> = Vec::new();
            for &pick in &raw.1 {
                if faults.is_empty() {
                    break;
                }
                let c = faults[pick as usize % faults.len()];
                if !healed.contains(&c) {
                    healed.push(c);
                }
            }
            inc.apply(&injected, &healed);
            for &(sx, sy, sz, dx, dy, dz) in &pairs {
                let s = c3(sx % k, sy % k, sz % k);
                let d = c3(dx % k, dy % k, dz % k);
                let mesh = inc.mesh().clone();
                if !mesh.is_healthy(s) || !mesh.is_healthy(d) {
                    continue;
                }
                let frame = Frame3::for_pair(&mesh, s, d);
                let (cs, cd) = (frame.to_canon(s), frame.to_canon(d));
                let m = inc.models(frame);
                let fresh_lab = Labelling3::compute(&mesh, frame, BorderPolicy::BorderSafe);
                let fresh_mccs = MccSet3::compute(&fresh_lab);
                let maintained = Router3::new(m.lab, m.mccs);
                let fresh = Router3::new(&fresh_lab, &fresh_mccs);
                for policy in Policy::suite(seed) {
                    let got = maintained.route(cs, cd, &mut policy.clone());
                    let want = fresh.route(cs, cd, &mut policy.clone());
                    prop_assert_eq!(&got, &want, "routing diverged for {}->{}", s, d);
                }
            }
        }
    }
}
