//! Property battery: the prepared (amortized) trial pipeline is
//! observationally identical to the fresh-per-trial functions.
//!
//! For random meshes, fault ramps, border policies and `TrialOptions`
//! combinations, a batch of pairs run through one
//! [`PreparedMesh2`]/[`PreparedMesh3`] must produce `TrialResult`s whose
//! every field — including the adaptivity and detection floats, compared
//! bit-for-bit — equals a fresh `run_trial_*_with` call on the same
//! inputs. This is the contract that lets `mcc-bench` swap the batched
//! runner in without perturbing a single table row.

use fault_model::BorderPolicy;
use mcc_routing::prepared::{
    run_trial_2d_prepared, run_trial_3d_prepared, PreparedMesh2, PreparedMesh3,
};
use mcc_routing::trial::{run_trial_2d_with, run_trial_3d_with};
use mcc_routing::TrialOptions;
use mesh_topo::coord::{c2, c3};
use mesh_topo::{Mesh2D, Mesh3D};
use proptest::prelude::*;

fn options(border_blocked: bool, mcc: bool, rfb: bool, greedy: bool) -> TrialOptions {
    TrialOptions {
        border: if border_blocked {
            BorderPolicy::BorderBlocked
        } else {
            BorderPolicy::BorderSafe
        },
        eval_mcc: mcc,
        eval_rfb: rfb,
        eval_greedy: greedy,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// 2-D: every pair of a batch agrees with its fresh twin, across all
    /// 16 `TrialOptions` combinations and both border policies.
    #[test]
    fn prepared_equals_fresh_2d(
        dims in (6..14i32, 6..14i32),
        faults in proptest::collection::vec((0..14i32, 0..14i32), 0..24),
        pairs in proptest::collection::vec((0..14i32, 0..14i32, 0..14i32, 0..14i32), 1..10),
        border_blocked in any::<bool>(),
        eval_mcc in any::<bool>(),
        eval_rfb in any::<bool>(),
        eval_greedy in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (w, h) = dims;
        let mut mesh = Mesh2D::new(w, h);
        for (x, y) in faults {
            let c = c2(x % w, y % h);
            if mesh.is_healthy(c) {
                mesh.inject_fault(c);
            }
        }
        let opts = options(border_blocked, eval_mcc, eval_rfb, eval_greedy);
        let mut pm = PreparedMesh2::new(&mesh, opts);
        for (i, (sx, sy, dx, dy)) in pairs.into_iter().enumerate() {
            let s = c2(sx % w, sy % h);
            let d = c2(dx % w, dy % h);
            if !mesh.is_healthy(s) || !mesh.is_healthy(d) {
                continue;
            }
            let policy_seed = seed.wrapping_add(i as u64);
            let prepared = run_trial_2d_prepared(&mut pm, s, d, policy_seed);
            let fresh = run_trial_2d_with(&mesh, s, d, policy_seed, &opts);
            prop_assert!(
                prepared.bit_identical(&fresh),
                "pair {s}->{d} opts {opts:?} faults {:?}: {prepared:?} != {fresh:?}",
                mesh.faults()
            );
        }
    }

    /// 3-D twin of the battery above.
    #[test]
    fn prepared_equals_fresh_3d(
        k in (5..9i32,),
        faults in proptest::collection::vec((0..9i32, 0..9i32, 0..9i32), 0..28),
        pairs in proptest::collection::vec(
            (0..9i32, 0..9i32, 0..9i32, 0..9i32, 0..9i32, 0..9i32),
            1..8,
        ),
        border_blocked in any::<bool>(),
        eval_mcc in any::<bool>(),
        eval_rfb in any::<bool>(),
        eval_greedy in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let k = k.0;
        let mut mesh = Mesh3D::kary(k);
        for (x, y, z) in faults {
            let c = c3(x % k, y % k, z % k);
            if mesh.is_healthy(c) {
                mesh.inject_fault(c);
            }
        }
        let opts = options(border_blocked, eval_mcc, eval_rfb, eval_greedy);
        let mut pm = PreparedMesh3::new(&mesh, opts);
        for (i, (sx, sy, sz, dx, dy, dz)) in pairs.into_iter().enumerate() {
            let s = c3(sx % k, sy % k, sz % k);
            let d = c3(dx % k, dy % k, dz % k);
            if !mesh.is_healthy(s) || !mesh.is_healthy(d) {
                continue;
            }
            let policy_seed = seed.wrapping_add(i as u64);
            let prepared = run_trial_3d_prepared(&mut pm, s, d, policy_seed);
            let fresh = run_trial_3d_with(&mesh, s, d, policy_seed, &opts);
            prop_assert!(
                prepared.bit_identical(&fresh),
                "pair {s}->{d} opts {opts:?} faults {:?}: {prepared:?} != {fresh:?}",
                mesh.faults()
            );
        }
    }

    /// 2-D torus: the cache key now includes the pair-specific rotation of
    /// the wrap frame; batches must still equal their fresh twins
    /// bit-for-bit (and the repeated-pair entries exercise slot reuse).
    #[test]
    fn prepared_equals_fresh_torus_2d(
        dims in (3..12i32, 3..12i32),
        faults in proptest::collection::vec((0..12i32, 0..12i32), 0..20),
        pairs in proptest::collection::vec((0..12i32, 0..12i32, 0..12i32, 0..12i32), 1..10),
        eval_mcc in any::<bool>(),
        eval_rfb in any::<bool>(),
        eval_greedy in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (w, h) = dims;
        let mut mesh = Mesh2D::torus(w, h);
        for (x, y) in faults {
            let c = c2(x % w, y % h);
            if mesh.is_healthy(c) {
                mesh.inject_fault(c);
            }
        }
        let opts = options(false, eval_mcc, eval_rfb, eval_greedy);
        let mut pm = PreparedMesh2::new(&mesh, opts);
        // Run the batch twice: the second lap re-hits every slot with a
        // frame already seen, the aliasing case the full-frame key guards.
        let pairs2 = pairs.clone();
        for (i, (sx, sy, dx, dy)) in pairs.into_iter().chain(pairs2).enumerate() {
            let s = c2(sx % w, sy % h);
            let d = c2(dx % w, dy % h);
            if !mesh.is_healthy(s) || !mesh.is_healthy(d) {
                continue;
            }
            let policy_seed = seed.wrapping_add(i as u64);
            let prepared = run_trial_2d_prepared(&mut pm, s, d, policy_seed);
            let fresh = run_trial_2d_with(&mesh, s, d, policy_seed, &opts);
            prop_assert!(
                prepared.bit_identical(&fresh),
                "torus pair {s}->{d} opts {opts:?} faults {:?}: {prepared:?} != {fresh:?}",
                mesh.faults()
            );
        }
    }

    /// 3-D torus twin.
    #[test]
    fn prepared_equals_fresh_torus_3d(
        dims in (3..7i32, 3..7i32, 3..7i32),
        faults in proptest::collection::vec((0..7i32, 0..7i32, 0..7i32), 0..24),
        pairs in proptest::collection::vec(
            (0..7i32, 0..7i32, 0..7i32, 0..7i32, 0..7i32, 0..7i32),
            1..8,
        ),
        eval_mcc in any::<bool>(),
        eval_rfb in any::<bool>(),
        eval_greedy in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (nx, ny, nz) = dims;
        let mut mesh = Mesh3D::torus(nx, ny, nz);
        for (x, y, z) in faults {
            let c = c3(x % nx, y % ny, z % nz);
            if mesh.is_healthy(c) {
                mesh.inject_fault(c);
            }
        }
        let opts = options(false, eval_mcc, eval_rfb, eval_greedy);
        let mut pm = PreparedMesh3::new(&mesh, opts);
        let pairs2 = pairs.clone();
        for (i, (sx, sy, sz, dx, dy, dz)) in pairs.into_iter().chain(pairs2).enumerate() {
            let s = c3(sx % nx, sy % ny, sz % nz);
            let d = c3(dx % nx, dy % ny, dz % nz);
            if !mesh.is_healthy(s) || !mesh.is_healthy(d) {
                continue;
            }
            let policy_seed = seed.wrapping_add(i as u64);
            let prepared = run_trial_3d_prepared(&mut pm, s, d, policy_seed);
            let fresh = run_trial_3d_with(&mesh, s, d, policy_seed, &opts);
            prop_assert!(
                prepared.bit_identical(&fresh),
                "torus pair {s}->{d} opts {opts:?} faults {:?}: {prepared:?} != {fresh:?}",
                mesh.faults()
            );
        }
    }
}
