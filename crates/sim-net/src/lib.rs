//! # sim-net — deterministic synchronous message-passing simulator
//!
//! The distributed protocols of the MCC reproduction (labelling,
//! identification, boundary construction, detection and routing messages)
//! run on this substrate. It models exactly what the paper assumes of the
//! hardware:
//!
//! * every node runs the same handler and owns private state,
//! * messages travel one mesh link per round (neighbor-to-neighbor along
//!   one dimension),
//! * delivery is reliable and FIFO per link; rounds are globally
//!   synchronous,
//! * execution is fully deterministic: nodes step in index order and each
//!   inbox is grouped in sender order.
//!
//! The engine is **flat and index-addressed**: a static [`Topology`]
//! (normally a full mesh, [`Grid2`] / [`Grid3`]) names nodes by linear
//! index, per-round delivery reuses one double-buffered message slab, and
//! an active-node bitset skips converged nodes entirely (see the
//! [`engine`] module docs for the layout, and DESIGN.md §7 for the
//! complexity budget). The pre-refactor hash-addressed engine survives in
//! [`crate::reference`] as the parity/benchmark twin.
//!
//! [`SimNet::run`] drives rounds until quiescence (no messages in flight)
//! or a round limit, returning message/round statistics — the protocol
//! overhead numbers of the evaluation (experiments E5/E7). In the paper's
//! terms this is the execution model Sections 3–5 assume for their
//! distributed labelling, identification and routing processes.
//!
//! # Examples
//!
//! A six-node line flooding a token one hop per round:
//!
//! ```
//! use sim_net::{Grid2, SimNet};
//!
//! // A 6x1 mesh; state records the hop count at which the token arrived.
//! let mut net: SimNet<Grid2, usize, usize> = SimNet::new(Grid2::new(6, 1), |_| 0);
//! net.post(0, 0);
//! let stats = net.run(100, |state, inbox, ctx| {
//!     for &(_, hops) in inbox {
//!         *state = hops;
//!         if ctx.me() + 1 < 6 {
//!             ctx.send(ctx.me() + 1, hops + 1); // forward one link
//!         }
//!     }
//! });
//! assert!(stats.quiescent);
//! assert_eq!(*net.state(5), 5);
//! assert_eq!(stats.messages, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod reference;
pub mod stats;
pub mod topology;

pub use engine::{Ctx, Inbox, SendError, SimNet};
pub use stats::RunStats;
pub use topology::{Grid2, Grid3, Topology};
