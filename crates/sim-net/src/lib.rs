//! # sim-net — deterministic synchronous message-passing simulator
//!
//! The distributed protocols of the MCC reproduction (labelling,
//! identification, boundary construction, detection and routing messages)
//! run on this substrate. It models exactly what the paper assumes of the
//! hardware:
//!
//! * every node runs the same handler and owns private state,
//! * messages travel one mesh link per round (neighbor-to-neighbor along
//!   one dimension),
//! * delivery is reliable and FIFO per link; rounds are globally
//!   synchronous,
//! * execution is fully deterministic: nodes step in coordinate order and
//!   inboxes are sorted by sender.
//!
//! [`SimNet::run`] drives rounds until quiescence (no messages in flight)
//! or a round limit, returning message/round statistics — the protocol
//! overhead numbers of the evaluation (experiments E5/E7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod stats;

pub use engine::{Ctx, SimNet};
pub use stats::RunStats;
