//! # sim-net — deterministic synchronous message-passing simulator
//!
//! The distributed protocols of the MCC reproduction (labelling,
//! identification, boundary construction, detection and routing messages)
//! run on this substrate. It models exactly what the paper assumes of the
//! hardware:
//!
//! * every node runs the same handler and owns private state,
//! * messages travel one mesh link per round (neighbor-to-neighbor along
//!   one dimension),
//! * delivery is reliable and FIFO per link; rounds are globally
//!   synchronous,
//! * execution is fully deterministic: nodes step in coordinate order and
//!   inboxes are sorted by sender.
//!
//! [`SimNet::run`] drives rounds until quiescence (no messages in flight)
//! or a round limit, returning message/round statistics — the protocol
//! overhead numbers of the evaluation (experiments E5/E7). In the paper's
//! terms this is the execution model Sections 3–5 assume for their
//! distributed labelling, identification and routing processes.
//!
//! # Examples
//!
//! A two-node network flooding a token one hop per round:
//!
//! ```
//! use sim_net::SimNet;
//!
//! // Nodes 0 and 1 on a line; state counts tokens seen.
//! let mut net: SimNet<i32, usize, ()> =
//!     SimNet::new([0, 1], |_| 0, |a: i32, b: i32| (a - b).abs() == 1);
//! net.post(0, ());
//! let stats = net.run(10, |seen, inbox, ctx| {
//!     for _ in inbox {
//!         *seen += 1;
//!         if ctx.me() == 0 {
//!             ctx.send(1, ()); // forward the stimulus one link
//!         }
//!     }
//! });
//! assert!(stats.quiescent);
//! assert_eq!(*net.state(1), 1);
//! assert_eq!(stats.messages, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod stats;

pub use engine::{Ctx, SimNet};
pub use stats::RunStats;
