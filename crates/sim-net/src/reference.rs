//! The pre-refactor hash-addressed engine, kept as a reference twin.
//!
//! This is the original `SimNet`: nodes live behind a `HashMap` coordinate
//! index, every node allocates its own inbox `Vec` per round, the link
//! relation is a boxed closure, and every node's handler runs every round
//! whether or not it has messages. It is semantically equivalent to the
//! flat engine in [`crate::engine`] — the parity tests in `mcc-protocols`
//! pin identical round and message counts on fixed seeds — and exists so
//! the speedup of the flat engine stays measurable (`BENCH_sim_rounds.json`)
//! and so a behavioral regression in the rewrite has a ground truth to be
//! caught against.

use std::collections::HashMap;
use std::hash::Hash;

use crate::stats::RunStats;

/// Per-step context of the reference engine: round number plus an outbox.
pub struct HashCtx<'a, C, M> {
    /// The current round (0-based).
    pub round: usize,
    coord: C,
    neighbor_check: &'a dyn Fn(C, C) -> bool,
    outbox: &'a mut Vec<(C, C, M)>,
    sent: usize,
}

impl<C: Copy + PartialEq + std::fmt::Debug, M> HashCtx<'_, C, M> {
    /// Send `msg` to the neighboring node `to`, arriving next round.
    ///
    /// # Panics
    /// If `to` is not a neighbor of the sending node — the paper's system
    /// model only has neighbor links.
    pub fn send(&mut self, to: C, msg: M) {
        assert!(
            (self.neighbor_check)(self.coord, to),
            "{:?} tried to send to non-neighbor {:?}",
            self.coord,
            to
        );
        self.outbox.push((self.coord, to, msg));
        self.sent += 1;
    }

    /// The coordinate of the node executing the handler.
    pub fn me(&self) -> C {
        self.coord
    }
}

/// The pre-refactor deterministic synchronous network over an arbitrary
/// coordinate set.
///
/// `C` is the node coordinate (ordered for determinism), `S` the per-node
/// state, `M` the message payload.
pub struct HashSimNet<C, S, M> {
    coords: Vec<C>,
    index: HashMap<C, usize>,
    states: Vec<S>,
    inboxes: Vec<Vec<(C, M)>>,
    neighbor_check: Box<dyn Fn(C, C) -> bool>,
    stats: RunStats,
}

impl<C, S, M> HashSimNet<C, S, M>
where
    C: Copy + Eq + Hash + Ord + std::fmt::Debug,
    M: Clone,
{
    /// Build a network over `coords` with per-node initial state from
    /// `init` and the link relation `neighbor_check`.
    pub fn new(
        coords: impl IntoIterator<Item = C>,
        mut init: impl FnMut(C) -> S,
        neighbor_check: impl Fn(C, C) -> bool + 'static,
    ) -> Self {
        let mut coords: Vec<C> = coords.into_iter().collect();
        coords.sort();
        coords.dedup();
        let index: HashMap<C, usize> = coords
            .iter()
            .copied()
            .enumerate()
            .map(|(i, c)| (c, i))
            .collect();
        let states: Vec<S> = coords.iter().map(|&c| init(c)).collect();
        let inboxes = coords.iter().map(|_| Vec::new()).collect();
        HashSimNet {
            coords,
            index,
            states,
            inboxes,
            neighbor_check: Box::new(neighbor_check),
            stats: RunStats::default(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// True if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Borrow a node's state.
    ///
    /// # Panics
    /// If `c` is not a node of this network.
    pub fn state(&self, c: C) -> &S {
        &self.states[self.index[&c]]
    }

    /// Mutably borrow a node's state (e.g. to seed protocol inputs).
    ///
    /// # Panics
    /// If `c` is not a node of this network.
    pub fn state_mut(&mut self, c: C) -> &mut S {
        let i = self.index[&c];
        &mut self.states[i]
    }

    /// Iterate `(coordinate, &state)` in coordinate order.
    pub fn iter(&self) -> impl Iterator<Item = (C, &S)> {
        self.coords.iter().copied().zip(self.states.iter())
    }

    /// Statistics accumulated over all `run` calls so far.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Inject a message to be delivered to `to` at the start of the next
    /// `run`. The sender is recorded as `to` itself.
    pub fn post(&mut self, to: C, msg: M) {
        let i = self.index[&to];
        self.inboxes[i].push((to, msg));
    }

    /// Run synchronous rounds until quiescence or `max_rounds`.
    ///
    /// Each round, every node's `step` runs once, in coordinate order,
    /// seeing the messages sent to it the previous round. The run stops
    /// after a round in which no messages were delivered and none were
    /// sent. Returns the statistics of **this** run.
    pub fn run(
        &mut self,
        max_rounds: usize,
        mut step: impl FnMut(&mut S, &[(C, M)], &mut HashCtx<'_, C, M>),
    ) -> RunStats {
        let mut run_stats = RunStats::default();
        let mut outbox: Vec<(C, C, M)> = Vec::new();
        for _round in 0..max_rounds {
            let inflight: usize = self.inboxes.iter().map(|b| b.len()).sum();
            outbox.clear();
            let mut sent_this_round = 0usize;
            for i in 0..self.coords.len() {
                let coord = self.coords[i];
                // Deterministic inbox order.
                self.inboxes[i].sort_by_key(|m| m.0);
                let inbox = std::mem::take(&mut self.inboxes[i]);
                let mut ctx = HashCtx {
                    round: run_stats.rounds,
                    coord,
                    neighbor_check: &*self.neighbor_check,
                    outbox: &mut outbox,
                    sent: 0,
                };
                step(&mut self.states[i], &inbox, &mut ctx);
                sent_this_round += ctx.sent;
            }
            // Deliver.
            for (from, to, msg) in outbox.drain(..) {
                let i = self.index[&to];
                self.inboxes[i].push((from, msg));
            }
            run_stats.rounds += 1;
            run_stats.messages += sent_this_round;
            run_stats.max_inflight = run_stats.max_inflight.max(sent_this_round);
            if inflight == 0 && sent_this_round == 0 {
                run_stats.quiescent = true;
                break;
            }
        }
        self.stats.absorb(run_stats);
        run_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::c2;
    use mesh_topo::{Mesh2D, C2};

    fn line_net(n: i32) -> HashSimNet<C2, u32, u32> {
        let mesh = Mesh2D::new(n, 1);
        HashSimNet::new(mesh.nodes(), |_| 0u32, |a: C2, b: C2| a.dist(b) == 1)
    }

    #[test]
    fn quiescent_immediately_without_stimulus() {
        let mut net = line_net(5);
        let stats = net.run(100, |_, _, _| {});
        assert!(stats.quiescent);
        assert_eq!(stats.messages, 0);
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn token_travels_one_hop_per_round() {
        let mut net = line_net(6);
        net.post(c2(0, 0), 0u32);
        let stats = net.run(100, |state, inbox, ctx| {
            for &(_, hops) in inbox {
                *state = hops;
                let next = c2(ctx.me().x + 1, 0);
                if next.x < 6 {
                    ctx.send(next, hops + 1);
                }
            }
        });
        assert!(stats.quiescent);
        // 5 link traversals for 6 nodes.
        assert_eq!(stats.messages, 5);
        assert_eq!(*net.state(c2(5, 0)), 5);
        // Arrival round of the token at the last node is its distance + 1.
        assert!(stats.rounds >= 6);
    }

    #[test]
    #[should_panic]
    fn non_neighbor_send_panics() {
        let mut net = line_net(5);
        net.post(c2(0, 0), 0u32);
        net.run(10, |_, inbox, ctx| {
            if !inbox.is_empty() {
                ctx.send(c2(4, 0), 9); // teleport attempt
            }
        });
    }

    #[test]
    fn round_limit_stops_runaway() {
        let mut net = line_net(3);
        net.post(c2(0, 0), 0);
        let stats = net.run(7, |_, inbox, ctx| {
            // Ping-pong forever.
            for _ in inbox {
                let me = ctx.me();
                let other = if me.x == 0 { c2(1, 0) } else { c2(me.x - 1, 0) };
                ctx.send(other, 0);
            }
        });
        assert!(!stats.quiescent);
        assert_eq!(stats.rounds, 7);
    }
}
