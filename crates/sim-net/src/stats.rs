//! Run statistics: the protocol-overhead metrics of the evaluation.

use serde::{Deserialize, Serialize};

/// Statistics of one [`crate::SimNet::run`] (or the accumulated totals).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Total messages sent (each one neighbor-link traversal).
    pub messages: usize,
    /// Largest number of messages sent in a single round.
    pub max_inflight: usize,
    /// True if the run ended because the network went quiet (rather than
    /// hitting the round limit).
    pub quiescent: bool,
}

impl RunStats {
    /// Fold another run's statistics into an accumulated total.
    pub fn absorb(&mut self, other: RunStats) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.max_inflight = self.max_inflight.max(other.max_inflight);
        self.quiescent = other.quiescent;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = RunStats {
            rounds: 2,
            messages: 10,
            max_inflight: 6,
            quiescent: false,
        };
        a.absorb(RunStats {
            rounds: 3,
            messages: 5,
            max_inflight: 9,
            quiescent: true,
        });
        assert_eq!(
            a,
            RunStats {
                rounds: 5,
                messages: 15,
                max_inflight: 9,
                quiescent: true
            }
        );
    }
}
