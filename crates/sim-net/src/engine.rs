//! The flat, index-addressed synchronous round engine.
//!
//! Nodes are linear indices `0..topo.len()` into dense state and inbox
//! arrays; the link relation is a static [`Topology`] value instead of a
//! boxed closure. Message delivery is a **double buffer**: every send of a
//! round lands in one shared outbox `Vec`, and an `O(messages + nodes)`
//! counting pass turns it into the next round's inbox view (a CSR layout:
//! one offset table, one index list grouped by recipient, one payload slab
//! in send order). No comparison sort runs, each payload is moved exactly
//! once, no per-node `Vec` is ever allocated, and every buffer keeps its
//! capacity across rounds.
//!
//! Dispatch is event-driven after round 0: a [`mesh_topo::NodeSet`] tracks
//! which nodes received messages, and only those run their handler. Round 0
//! of every [`SimNet::run`] dispatches **all** nodes (protocols use it to
//! announce initial state without a stimulus message); from round 1 on a
//! node whose inbox is empty is skipped, so converged regions of the mesh
//! cost nothing while a protocol's active frontier keeps working. Handlers
//! must therefore change state only in round 0 or in response to messages —
//! exactly the discipline the paper's protocols already follow.
//!
//! Statistics (rounds, messages, max in-flight, quiescence) are accounted
//! identically to the reference engine in [`crate::reference`]; the parity
//! tests in `mcc-protocols` pin this.

use mesh_topo::{par, NodeSet, Parallelism};

use crate::stats::RunStats;
use crate::topology::Topology;

/// Error returned by [`Ctx::try_send`] for a send to a non-neighbor.
///
/// The paper's system model only has neighbor links, so a non-neighbor
/// send is always a protocol bug. [`Ctx::send`] checks the link with a
/// `debug_assert!` (tests fail loudly, release sweeps pay nothing);
/// `try_send` checks it always and surfaces the violation as a value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SendError {
    /// Index of the node that attempted the send.
    pub from: usize,
    /// The non-neighbor index it tried to reach.
    pub to: usize,
}

impl core::fmt::Display for SendError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "node {} tried to send to non-neighbor {}",
            self.from, self.to
        )
    }
}

impl std::error::Error for SendError {}

/// Per-step context handed to a node's handler: the current round number
/// and an outbox for neighbor sends.
pub struct Ctx<'a, T: Topology, M> {
    /// The current round (0-based within this `run`).
    pub round: usize,
    me: u32,
    topo: &'a T,
    outbox: &'a mut Vec<(u32, u32, M)>,
    sent: usize,
}

impl<T: Topology, M> Ctx<'_, T, M> {
    /// The index of the node executing the handler.
    #[inline]
    pub fn me(&self) -> usize {
        self.me as usize
    }

    /// The coordinate of the node executing the handler.
    #[inline]
    pub fn coord(&self) -> T::Coord {
        self.topo.coord_of(self.me as usize)
    }

    /// Send `msg` to the neighboring node `to`, arriving next round.
    ///
    /// The neighbor link is checked with a `debug_assert!`: a malformed
    /// protocol fails its tests instead of aborting a release sweep. Use
    /// [`Ctx::try_send`] where the link is not statically evident.
    #[inline]
    pub fn send(&mut self, to: usize, msg: M) {
        debug_assert!(
            self.topo.linked(self.me as usize, to),
            "node {} tried to send to non-neighbor {}",
            self.me,
            to
        );
        self.outbox.push((to as u32, self.me, msg));
        self.sent += 1;
    }

    /// Send `msg` to `to` if it is a neighbor, or report the malformed
    /// send as a typed [`SendError`] (in every build profile).
    #[inline]
    pub fn try_send(&mut self, to: usize, msg: M) -> Result<(), SendError> {
        if !self.topo.linked(self.me as usize, to) {
            return Err(SendError {
                from: self.me as usize,
                to,
            });
        }
        self.outbox.push((to as u32, self.me, msg));
        self.sent += 1;
        Ok(())
    }
}

/// One node's view of its messages for the current round.
///
/// The engine keeps all of a round's messages in one slab (in arrival =
/// send order) and hands each node an index list over it: iteration is one
/// `u32` indirection per message, and no message is ever moved again after
/// delivery. Iterate it directly (`for &(from, msg) in inbox`) or via
/// [`Inbox::iter`]; items are `&(sender index, payload)`.
#[derive(Clone, Copy)]
pub struct Inbox<'a, M> {
    data: &'a [(u32, M)],
    order: &'a [u32],
}

impl<'a, M> Inbox<'a, M> {
    /// Number of messages delivered to this node this round.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if nothing was delivered to this node this round.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Iterate `&(sender index, payload)` in sender dispatch order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = &'a (u32, M)> + '_ {
        self.order.iter().map(|&k| &self.data[k as usize])
    }
}

impl<'a, M> IntoIterator for Inbox<'a, M> {
    type Item = &'a (u32, M);
    type IntoIter = InboxIter<'a, M>;

    #[inline]
    fn into_iter(self) -> InboxIter<'a, M> {
        InboxIter {
            data: self.data,
            order: self.order.iter(),
        }
    }
}

/// Iterator over an [`Inbox`].
pub struct InboxIter<'a, M> {
    data: &'a [(u32, M)],
    order: core::slice::Iter<'a, u32>,
}

impl<'a, M> Iterator for InboxIter<'a, M> {
    type Item = &'a (u32, M);

    #[inline]
    fn next(&mut self) -> Option<&'a (u32, M)> {
        self.order.next().map(|&k| &self.data[k as usize])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.order.size_hint()
    }
}

/// A deterministic synchronous network over a static [`Topology`].
///
/// `S` is the per-node state, `M` the message payload. Nodes are addressed
/// by linear index (see [`Topology`]); [`SimNet::state_at`] bridges from
/// coordinates where convenient.
pub struct SimNet<T: Topology, S, M> {
    topo: T,
    states: Vec<S>,
    /// This round's messages, `(from, payload)`, in arrival order.
    inbox_data: Vec<(u32, M)>,
    /// Slab indices grouped by recipient: node `i`'s inbox order is
    /// `inbox_order[inbox_start[i] .. inbox_start[i + 1]]`.
    inbox_order: Vec<u32>,
    inbox_start: Vec<u32>,
    /// Counting-sort write cursors (scratch, one per node).
    cursor: Vec<u32>,
    /// Next round's messages, `(to, from, payload)`, in send order.
    outbox: Vec<(u32, u32, M)>,
    /// Nodes with a non-empty inbox this round.
    active: NodeSet,
    stats: RunStats,
}

impl<T: Topology, S, M> SimNet<T, S, M> {
    /// Build a network over `topo` with per-node initial state from
    /// `init` (called with each node's linear index, in index order).
    pub fn new(topo: T, init: impl FnMut(usize) -> S) -> Self {
        let n = topo.len();
        let states: Vec<S> = (0..n).map(init).collect();
        SimNet {
            topo,
            states,
            inbox_data: Vec::new(),
            inbox_order: Vec::new(),
            inbox_start: vec![0; n + 1],
            cursor: vec![0; n],
            outbox: Vec::new(),
            active: NodeSet::new(n),
            stats: RunStats::default(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The network's topology.
    #[inline]
    pub fn topo(&self) -> &T {
        &self.topo
    }

    /// Borrow the state of node index `i`.
    #[inline]
    pub fn state(&self, i: usize) -> &S {
        &self.states[i]
    }

    /// Mutably borrow the state of node index `i`.
    #[inline]
    pub fn state_mut(&mut self, i: usize) -> &mut S {
        &mut self.states[i]
    }

    /// Borrow the state of the node at coordinate `c`.
    ///
    /// # Panics
    /// If `c` is not a node of the topology.
    pub fn state_at(&self, c: T::Coord) -> &S {
        let i = self
            .topo
            .index_of(c)
            .unwrap_or_else(|| panic!("{c:?} is not a node of this network"));
        &self.states[i]
    }

    /// Mutably borrow the state of the node at coordinate `c`.
    ///
    /// # Panics
    /// If `c` is not a node of the topology.
    pub fn state_at_mut(&mut self, c: T::Coord) -> &mut S {
        let i = self
            .topo
            .index_of(c)
            .unwrap_or_else(|| panic!("{c:?} is not a node of this network"));
        &mut self.states[i]
    }

    /// Iterate `(index, &state)` in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &S)> {
        self.states.iter().enumerate()
    }

    /// Iterate `(coordinate, &state)` in index order.
    pub fn iter_coords(&self) -> impl Iterator<Item = (T::Coord, &S)> + '_ {
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| (self.topo.coord_of(i), s))
    }

    /// Statistics accumulated over all `run` calls so far.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Inject a message to be delivered to node index `to` at the start of
    /// the next `run` (models an external stimulus, e.g. a routing request
    /// arriving at the source node). The sender is recorded as `to` itself.
    ///
    /// # Panics
    /// If `to` is out of range.
    pub fn post(&mut self, to: usize, msg: M) {
        assert!(to < self.states.len(), "post target {to} out of range");
        self.outbox.push((to as u32, to as u32, msg));
    }

    /// Move the outbox into the inbox slab and group it by recipient in
    /// `O(messages + nodes)`, comparison-free. Stable: each node's inbox
    /// is ordered by sender dispatch order (ascending sender index, then
    /// send order).
    fn deliver(&mut self) {
        self.active.clear();
        self.inbox_data.clear();
        self.inbox_start.iter_mut().for_each(|o| *o = 0);
        // Counting pass: inbox_start[i + 1] accumulates node i's count.
        for &(to, _, _) in &self.outbox {
            self.inbox_start[to as usize + 1] += 1;
        }
        for i in 1..self.inbox_start.len() {
            self.inbox_start[i] += self.inbox_start[i - 1];
        }
        // Scatter pass: move each payload into the slab (exactly once, in
        // send order) and place its slab index at its recipient's cursor —
        // iterating in send order keeps every inbox stable. No comparison
        // sort anywhere.
        let n = self.cursor.len();
        self.cursor.copy_from_slice(&self.inbox_start[..n]);
        self.inbox_order.resize(self.outbox.len(), 0);
        for (k, (to, from, msg)) in self.outbox.drain(..).enumerate() {
            self.inbox_data.push((from, msg));
            let c = &mut self.cursor[to as usize];
            self.inbox_order[*c as usize] = k as u32;
            *c += 1;
            self.active.insert(to as usize);
        }
    }

    /// Run synchronous rounds until quiescence or `max_rounds`.
    ///
    /// Round 0 dispatches every node; later rounds dispatch only nodes
    /// whose inbox is non-empty (see the module docs for the handler
    /// discipline this implies). A node's handler sees the messages sent
    /// to it the previous round as `(sender index, payload)` pairs. The
    /// run stops after a round in which no messages were delivered and
    /// none were sent. Returns the statistics of **this** run.
    pub fn run(
        &mut self,
        max_rounds: usize,
        mut step: impl FnMut(&mut S, Inbox<'_, M>, &mut Ctx<'_, T, M>),
    ) -> RunStats {
        let mut run_stats = RunStats::default();
        for round in 0..max_rounds {
            self.deliver();
            let inflight = self.inbox_data.len();
            let mut sent_this_round = 0usize;
            {
                let SimNet {
                    topo,
                    states,
                    inbox_data,
                    inbox_order,
                    inbox_start,
                    outbox,
                    active,
                    ..
                } = self;
                let topo: &T = topo;
                let n = topo.len();
                let mut dispatch = |i: usize| {
                    let inbox = Inbox {
                        data: inbox_data,
                        order: &inbox_order[inbox_start[i] as usize..inbox_start[i + 1] as usize],
                    };
                    let mut ctx = Ctx {
                        round,
                        me: i as u32,
                        topo,
                        outbox,
                        sent: 0,
                    };
                    step(&mut states[i], inbox, &mut ctx);
                    sent_this_round += ctx.sent;
                };
                if round == 0 {
                    (0..n).for_each(&mut dispatch);
                } else {
                    active.iter().for_each(&mut dispatch);
                }
            }
            run_stats.rounds += 1;
            run_stats.messages += sent_this_round;
            run_stats.max_inflight = run_stats.max_inflight.max(sent_this_round);
            if inflight == 0 && sent_this_round == 0 {
                run_stats.quiescent = true;
                break;
            }
        }
        self.stats.absorb(run_stats);
        run_stats
    }

    /// [`SimNet::run`] with round dispatch sharded over scoped threads.
    ///
    /// Nodes are split into contiguous index ranges (one shard per
    /// thread); each shard dispatches its nodes **in ascending index
    /// order** into a private outbox, and the shard outboxes are
    /// concatenated in shard order afterwards. Since sequential dispatch
    /// is also ascending index order, the merged outbox reproduces the
    /// sequential send order exactly — and the stable counting-sort
    /// delivery then produces identical inboxes. Rounds, messages,
    /// delivered order and [`RunStats`] are therefore **bit-for-bit
    /// equal** to [`SimNet::run`] for every thread count (the handler
    /// itself must not depend on dispatch interleaving across nodes,
    /// which the `Fn`-not-`FnMut` bound enforces: no shared mutable
    /// capture). Falls back to [`SimNet::run`] when the budget resolves
    /// to one thread or the network is too small to shard.
    pub fn run_par(
        &mut self,
        max_rounds: usize,
        parallelism: Parallelism,
        step: impl Fn(&mut S, Inbox<'_, M>, &mut Ctx<'_, T, M>) + Sync,
    ) -> RunStats
    where
        T: Sync,
        S: Send,
        M: Send + Sync,
    {
        let threads = parallelism.resolve();
        let shards = par::bands(self.states.len(), threads);
        if threads <= 1 || shards.len() < 2 {
            return self.run(max_rounds, step);
        }
        let mut run_stats = RunStats::default();
        for round in 0..max_rounds {
            self.deliver();
            let inflight = self.inbox_data.len();
            let mut sent_this_round = 0usize;
            {
                let SimNet {
                    topo,
                    states,
                    inbox_data,
                    inbox_order,
                    inbox_start,
                    outbox,
                    active,
                    ..
                } = self;
                let topo: &T = topo;
                let inbox_data: &[(u32, M)] = inbox_data;
                let inbox_order: &[u32] = inbox_order;
                let inbox_start: &[u32] = inbox_start;
                let active: &NodeSet = active;
                std::thread::scope(|scope| {
                    let mut rest: &mut [S] = states;
                    let mut handles = Vec::with_capacity(shards.len());
                    for range in &shards {
                        let (shard_states, tail) = rest.split_at_mut(range.len());
                        rest = tail;
                        let range = range.clone();
                        let step = &step;
                        handles.push(scope.spawn(move || {
                            let mut shard_outbox: Vec<(u32, u32, M)> = Vec::new();
                            let mut sent = 0usize;
                            let mut dispatch = |i: usize| {
                                let inbox = Inbox {
                                    data: inbox_data,
                                    order: &inbox_order
                                        [inbox_start[i] as usize..inbox_start[i + 1] as usize],
                                };
                                let mut ctx = Ctx {
                                    round,
                                    me: i as u32,
                                    topo,
                                    outbox: &mut shard_outbox,
                                    sent: 0,
                                };
                                step(&mut shard_states[i - range.start], inbox, &mut ctx);
                                sent += ctx.sent;
                            };
                            if round == 0 {
                                range.clone().for_each(&mut dispatch);
                            } else {
                                active.iter_range(range.clone()).for_each(&mut dispatch);
                            }
                            (shard_outbox, sent)
                        }));
                    }
                    for h in handles {
                        let (shard_outbox, sent) = h.join().expect("sim-net shard thread panicked");
                        outbox.extend(shard_outbox);
                        sent_this_round += sent;
                    }
                });
            }
            run_stats.rounds += 1;
            run_stats.messages += sent_this_round;
            run_stats.max_inflight = run_stats.max_inflight.max(sent_this_round);
            if inflight == 0 && sent_this_round == 0 {
                run_stats.quiescent = true;
                break;
            }
        }
        self.stats.absorb(run_stats);
        run_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Grid2, Grid3};
    use mesh_topo::coord::c2;
    use mesh_topo::Dir2;

    fn line_net(n: i32) -> SimNet<Grid2, u32, u32> {
        SimNet::new(Grid2::new(n, 1), |_| 0u32)
    }

    #[test]
    fn quiescent_immediately_without_stimulus() {
        let mut net = line_net(5);
        let stats = net.run(100, |_, _, _| {});
        assert!(stats.quiescent);
        assert_eq!(stats.messages, 0);
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn token_travels_one_hop_per_round() {
        let mut net = line_net(6);
        net.post(0, 0u32);
        let stats = net.run(100, |state, inbox, ctx| {
            for &(_, hops) in inbox {
                *state = hops;
                if ctx.me() + 1 < 6 {
                    ctx.send(ctx.me() + 1, hops + 1);
                }
            }
        });
        assert!(stats.quiescent);
        // 5 link traversals for 6 nodes.
        assert_eq!(stats.messages, 5);
        assert_eq!(*net.state(5), 5);
        assert!(stats.rounds >= 6);
    }

    // In release builds the malformed send is *not* checked (that is the
    // point: sweeps never abort), so the test only has teeth under
    // debug_assertions, where it must panic.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic]
    fn non_neighbor_send_is_a_debug_assert() {
        let mut net = line_net(5);
        net.post(0, 0u32);
        net.run(10, |_, inbox, ctx| {
            if !inbox.is_empty() {
                ctx.send(4, 9); // teleport attempt
            }
        });
    }

    #[test]
    fn try_send_reports_typed_error() {
        let mut net = line_net(5);
        net.post(0, 0u32);
        let mut errs = Vec::new();
        net.run(10, |_, inbox, ctx| {
            if !inbox.is_empty() && ctx.me() == 0 {
                if let Err(e) = ctx.try_send(4, 9) {
                    errs.push(e);
                }
                ctx.try_send(1, 1).expect("neighbor send succeeds");
            }
        });
        assert_eq!(errs, vec![SendError { from: 0, to: 4 }]);
        assert!(errs[0].to_string().contains("non-neighbor"));
    }

    #[test]
    fn flood_counts_messages_and_skips_quiet_nodes() {
        // Flood from the corner of a 4x4 mesh; every node forwards once.
        let topo = Grid2::new(4, 4);
        let space = topo.space();
        let mut net: SimNet<Grid2, bool, ()> = SimNet::new(topo, |_| false);
        net.post(space.index(c2(0, 0)), ());
        let stats = net.run(100, move |seen, inbox, ctx| {
            if !inbox.is_empty() && !*seen {
                *seen = true;
                let me = ctx.me();
                for d in Dir2::ALL {
                    if let Some(j) = space.step(me, d) {
                        ctx.send(j, ());
                    }
                }
            }
        });
        assert!(stats.quiescent);
        assert!(net.iter().all(|(_, &seen)| seen));
        // Each node sends to each of its neighbors exactly once: the total
        // equals the number of directed edges = 2 * undirected links.
        assert_eq!(stats.messages, 2 * (2 * 4 * 3));
    }

    #[test]
    fn inboxes_are_grouped_by_sender_order() {
        // Both neighbors of the middle node send in round 0; the middle
        // node's inbox must list the lower sender index first.
        let mut net = line_net(3);
        let mut seen: Vec<(u32, u32)> = Vec::new();
        net.run(3, |_, inbox, ctx| {
            if ctx.round == 0 && ctx.me() != 1 {
                ctx.send(1, ctx.me() as u32);
            }
            if ctx.me() == 1 {
                seen.extend(inbox.iter().map(|&(f, m)| (f, m)));
            }
        });
        assert_eq!(seen, vec![(0, 0), (2, 2)]);
    }

    #[test]
    fn round_limit_stops_runaway() {
        let mut net = line_net(3);
        net.post(0, 0);
        let stats = net.run(7, |_, inbox, ctx| {
            // Ping-pong forever.
            for _ in inbox {
                let other = if ctx.me() == 0 { 1 } else { ctx.me() - 1 };
                ctx.send(other, 0);
            }
        });
        assert!(!stats.quiescent);
        assert_eq!(stats.rounds, 7);
    }

    #[test]
    fn state_access_by_coordinate_and_index() {
        let mut net: SimNet<Grid3, u32, ()> = SimNet::new(Grid3::new(3, 3, 3), |_| 0);
        use mesh_topo::coord::c3;
        *net.state_at_mut(c3(1, 2, 0)) = 42;
        let i = net.topo().index_of(c3(1, 2, 0)).unwrap();
        assert_eq!(*net.state(i), 42);
        assert_eq!(*net.state_at(c3(1, 2, 0)), 42);
        assert_eq!(net.len(), 27);
        assert_eq!(net.iter_coords().filter(|(_, &s)| s == 42).count(), 1);
    }

    #[test]
    fn run_par_flood_matches_run_bit_for_bit() {
        use mesh_topo::Parallelism;
        // The same corner flood, sequential vs sharded: states, per-run
        // stats and cumulative stats must all be identical.
        let flood = |seen: &mut bool, inbox: Inbox<'_, ()>, ctx: &mut Ctx<'_, Grid2, ()>| {
            if !inbox.is_empty() && !*seen {
                *seen = true;
                let me = ctx.me();
                let space = Grid2::new(16, 16).space();
                for d in Dir2::ALL {
                    if let Some(j) = space.step(me, d) {
                        ctx.send(j, ());
                    }
                }
            }
        };
        let topo = Grid2::new(16, 16);
        let start = topo.space().index(c2(0, 0));
        let mut seq: SimNet<Grid2, bool, ()> = SimNet::new(Grid2::new(16, 16), |_| false);
        seq.post(start, ());
        let seq_stats = seq.run(1000, flood);
        for t in [1usize, 2, 3, 8] {
            let mut par: SimNet<Grid2, bool, ()> = SimNet::new(Grid2::new(16, 16), |_| false);
            par.post(start, ());
            let par_stats = par.run_par(1000, Parallelism::new(t), flood);
            assert_eq!(seq_stats, par_stats, "{t} threads");
            assert_eq!(seq.stats(), par.stats(), "{t} threads");
            for (i, s) in seq.iter() {
                assert_eq!(*s, *par.state(i), "state diverged at {i}, {t} threads");
            }
        }
    }

    #[test]
    fn run_par_preserves_inbox_sender_order() {
        use mesh_topo::Parallelism;
        // Shard-order outbox merge must keep each inbox grouped by
        // ascending sender index, exactly like the sequential engine.
        for t in [2usize, 4] {
            let mut net = line_net(3);
            let seen = std::sync::Mutex::new(Vec::<(u32, u32)>::new());
            net.run_par(3, Parallelism::new(t), |_, inbox, ctx| {
                if ctx.round == 0 && ctx.me() != 1 {
                    ctx.send(1, ctx.me() as u32);
                }
                if ctx.me() == 1 {
                    seen.lock()
                        .unwrap()
                        .extend(inbox.iter().map(|&(f, m)| (f, m)));
                }
            });
            assert_eq!(seen.into_inner().unwrap(), vec![(0, 0), (2, 2)]);
        }
    }

    #[test]
    fn second_run_redispatches_all_nodes_in_round_zero() {
        // Protocols key initial announcements on `ctx.round == 0`; each
        // `run` call must grant every node that round-0 step.
        let mut net = line_net(4);
        let mut steps = 0usize;
        net.run(5, |_, _, _| {});
        net.run(5, |_, _, _| steps += 1);
        assert_eq!(steps, 4);
    }
}
