//! Static link structure of a simulated network.
//!
//! The flat engine addresses nodes by **linear index**; a [`Topology`] is
//! the compile-time-known link relation over those indices. It replaces
//! the boxed `neighbor_check` closure of the pre-refactor engine (kept in
//! [`crate::reference`]): the engine and its handlers are generic over a
//! `Copy` topology value, so neighbor tests inline and carry no dynamic
//! dispatch or hashing.
//!
//! [`Grid2`] and [`Grid3`] are the full rectangular/cuboid meshes of the
//! paper, linearized by [`mesh_topo::NodeSpace2`] / [`mesh_topo::NodeSpace3`]
//! (`x` fastest, then `y`, then `z`). Protocol handlers capture the
//! underlying node space (it is `Copy`) and use its `step`/`index`/`coord`
//! methods to move between indices and coordinates.

use mesh_topo::{NodeSpace2, NodeSpace3, C2, C3};

/// The static link relation of a network over linear node indices
/// `0..len()`.
///
/// Implementors are cheap `Copy` values: the engine stores one and hands
/// references to handlers through [`crate::Ctx`].
pub trait Topology: Copy {
    /// The coordinate type nodes are named by outside the engine.
    type Coord: Copy + Eq + core::fmt::Debug;

    /// Number of nodes.
    fn len(&self) -> usize;

    /// True if the topology has no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of `c`, or `None` if `c` is not a node.
    fn index_of(&self, c: Self::Coord) -> Option<usize>;

    /// The coordinate of linear index `i`.
    fn coord_of(&self, i: usize) -> Self::Coord;

    /// True if nodes `a` and `b` share a link.
    fn linked(&self, a: usize, b: usize) -> bool;

    /// Call `f` with the index of every neighbor of `i`, in a fixed
    /// deterministic order.
    fn for_neighbors(&self, i: usize, f: impl FnMut(usize));
}

/// A full `width × height` 2-D mesh (or torus) with 4-neighbor links.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Grid2 {
    space: NodeSpace2,
}

impl Grid2 {
    /// The topology of a `width × height` mesh.
    ///
    /// # Panics
    /// If either dimension is not positive.
    pub fn new(width: i32, height: i32) -> Grid2 {
        Grid2 {
            space: NodeSpace2::new(width, height),
        }
    }

    /// The topology of a `width × height` torus: every axis wraps, every
    /// node has exactly four links.
    ///
    /// # Panics
    /// If either dimension is smaller than 3 (see
    /// [`mesh_topo::NodeSpace2::torus`]).
    pub fn torus(width: i32, height: i32) -> Grid2 {
        Grid2 {
            space: NodeSpace2::torus(width, height),
        }
    }

    /// The topology over an existing linearization — the handle protocol
    /// layers use so a mesh's wrap mode carries over unchanged.
    pub fn from_space(space: NodeSpace2) -> Grid2 {
        Grid2 { space }
    }

    /// The underlying linearization (copy it into handlers for
    /// index/coordinate math).
    #[inline]
    pub fn space(&self) -> NodeSpace2 {
        self.space
    }
}

impl Topology for Grid2 {
    type Coord = C2;

    #[inline]
    fn len(&self) -> usize {
        self.space.len()
    }

    #[inline]
    fn index_of(&self, c: C2) -> Option<usize> {
        self.space.index_checked(c)
    }

    #[inline]
    fn coord_of(&self, i: usize) -> C2 {
        self.space.coord(i)
    }

    #[inline]
    fn linked(&self, a: usize, b: usize) -> bool {
        a < self.space.len()
            && b < self.space.len()
            && self.space.dist(self.space.coord(a), self.space.coord(b)) == 1
    }

    #[inline]
    fn for_neighbors(&self, i: usize, f: impl FnMut(usize)) {
        self.space.for_neighbors4(i, f);
    }
}

/// A full `nx × ny × nz` 3-D mesh (or torus) with 6-neighbor links.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Grid3 {
    space: NodeSpace3,
}

impl Grid3 {
    /// The topology of an `nx × ny × nz` mesh.
    ///
    /// # Panics
    /// If any dimension is not positive.
    pub fn new(nx: i32, ny: i32, nz: i32) -> Grid3 {
        Grid3 {
            space: NodeSpace3::new(nx, ny, nz),
        }
    }

    /// The topology of an `nx × ny × nz` torus (see [`Grid2::torus`]).
    ///
    /// # Panics
    /// If any dimension is smaller than 3.
    pub fn torus(nx: i32, ny: i32, nz: i32) -> Grid3 {
        Grid3 {
            space: NodeSpace3::torus(nx, ny, nz),
        }
    }

    /// The topology over an existing linearization (see
    /// [`Grid2::from_space`]).
    pub fn from_space(space: NodeSpace3) -> Grid3 {
        Grid3 { space }
    }

    /// The underlying linearization.
    #[inline]
    pub fn space(&self) -> NodeSpace3 {
        self.space
    }
}

impl Topology for Grid3 {
    type Coord = C3;

    #[inline]
    fn len(&self) -> usize {
        self.space.len()
    }

    #[inline]
    fn index_of(&self, c: C3) -> Option<usize> {
        self.space.index_checked(c)
    }

    #[inline]
    fn coord_of(&self, i: usize) -> C3 {
        self.space.coord(i)
    }

    #[inline]
    fn linked(&self, a: usize, b: usize) -> bool {
        a < self.space.len()
            && b < self.space.len()
            && self.space.dist(self.space.coord(a), self.space.coord(b)) == 1
    }

    #[inline]
    fn for_neighbors(&self, i: usize, f: impl FnMut(usize)) {
        self.space.for_neighbors6(i, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::{c2, c3};

    #[test]
    fn grid2_links_match_manhattan_distance() {
        let g = Grid2::new(4, 3);
        assert_eq!(g.len(), 12);
        let a = g.index_of(c2(1, 1)).unwrap();
        let b = g.index_of(c2(2, 1)).unwrap();
        let d = g.index_of(c2(2, 2)).unwrap();
        assert!(g.linked(a, b));
        assert!(!g.linked(a, d)); // diagonal
        assert!(!g.linked(a, a));
        assert_eq!(g.index_of(c2(4, 0)), None);
        assert_eq!(g.coord_of(b), c2(2, 1));
    }

    #[test]
    fn grid2_neighbor_enumeration_is_in_space() {
        let g = Grid2::new(3, 3);
        let mut seen = Vec::new();
        g.for_neighbors(g.index_of(c2(0, 0)).unwrap(), |j| seen.push(g.coord_of(j)));
        assert_eq!(seen, vec![c2(1, 0), c2(0, 1)]);
    }

    #[test]
    fn torus_grids_link_across_the_seam() {
        let g = Grid2::torus(5, 4);
        assert!(g.space().wraps());
        let a = g.index_of(c2(0, 2)).unwrap();
        let b = g.index_of(c2(4, 2)).unwrap();
        assert!(g.linked(a, b), "x wrap link");
        assert!(g.linked(g.index_of(c2(3, 0)).unwrap(), g.index_of(c2(3, 3)).unwrap()));
        assert!(!g.linked(a, g.index_of(c2(2, 2)).unwrap()));
        // Every node has exactly four links, and for_neighbors agrees
        // with linked().
        for i in 0..g.len() {
            let mut n = Vec::new();
            g.for_neighbors(i, |j| n.push(j));
            assert_eq!(n.len(), 4);
            for j in n {
                assert!(g.linked(i, j));
            }
        }

        let g3 = Grid3::torus(3, 4, 5);
        let a = g3.index_of(c3(0, 0, 0)).unwrap();
        for b in [c3(2, 0, 0), c3(0, 3, 0), c3(0, 0, 4)] {
            assert!(g3.linked(a, g3.index_of(b).unwrap()), "{b:?}");
        }
        let mut n = 0;
        g3.for_neighbors(a, |_| n += 1);
        assert_eq!(n, 6);
        // from_space preserves the wrap mode.
        assert_eq!(Grid3::from_space(g3.space()), g3);
    }

    #[test]
    fn grid3_links_and_roundtrip() {
        let g = Grid3::new(3, 3, 3);
        assert_eq!(g.len(), 27);
        let a = g.index_of(c3(1, 1, 1)).unwrap();
        let b = g.index_of(c3(1, 1, 2)).unwrap();
        assert!(g.linked(a, b));
        assert!(!g.linked(a, g.index_of(c3(2, 2, 1)).unwrap()));
        let mut n = 0;
        g.for_neighbors(a, |_| n += 1);
        assert_eq!(n, 6);
        for i in 0..g.len() {
            assert_eq!(g.index_of(g.coord_of(i)), Some(i));
        }
    }
}
