//! # mcc-mesh — facade crate
//!
//! Re-exports the whole workspace: the MCC fault-information model and
//! fault-tolerant adaptive minimal routing for 2-D and 3-D meshes
//! (reproduction of Jiang, Wu & Wang, ICPP 2005), together with the
//! substrates it is built on.
//!
//! Start with the [`mesh_topo`] substrate to build a mesh and inject faults,
//! use [`fault_model`] to compute MCC fault regions and existence conditions,
//! and [`mcc_routing`] to actually route. [`mcc_protocols`] contains the
//! distributed (message-passing) implementations running on [`sim_net`].
//!
//! # Examples
//!
//! The shortest possible end-to-end run — inject faults, label, route:
//!
//! ```
//! use mcc_mesh::mcc_routing::run_trial_2d;
//! use mcc_mesh::mesh_topo::coord::c2;
//! use mcc_mesh::mesh_topo::{FaultSpec, Mesh2D};
//!
//! let mut mesh = Mesh2D::new(12, 12);
//! FaultSpec::uniform(10, 3).inject_2d(&mut mesh, &[c2(0, 0), c2(11, 11)]);
//! let trial = run_trial_2d(&mesh, c2(0, 0), c2(11, 11), 3);
//! assert_eq!(trial.mcc_ok, trial.oracle_ok); // the MCC condition is exact
//! ```

#![forbid(unsafe_code)]

pub use fault_model;
pub use mcc_protocols;
pub use mcc_routing;
pub use mesh_service;
pub use mesh_topo;
pub use sim_net;

/// The workspace README, compiled as documentation so its Rust code blocks
/// run under `cargo test --doc` — README examples cannot silently drift
/// from the API.
#[doc = include_str!("../README.md")]
mod readme_doctests {}
