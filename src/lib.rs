//! # mcc-mesh — facade crate
//!
//! Re-exports the whole workspace: the MCC fault-information model and
//! fault-tolerant adaptive minimal routing for 2-D and 3-D meshes
//! (reproduction of Jiang, Wu & Wang, ICPP 2005), together with the
//! substrates it is built on.
//!
//! Start with the [`mesh_topo`] substrate to build a mesh and inject faults,
//! use [`fault_model`] to compute MCC fault regions and existence conditions,
//! and [`mcc_routing`] to actually route. [`mcc_protocols`] contains the
//! distributed (message-passing) implementations running on [`sim_net`].

#![forbid(unsafe_code)]

pub use fault_model;
pub use mcc_protocols;
pub use mcc_routing;
pub use mesh_topo;
pub use sim_net;
